// Tests for the common substrate: strings, dates, deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "idnscope/common/date.h"
#include "idnscope/common/result.h"
#include "idnscope/common/rng.h"
#include "idnscope/common/strings.h"

namespace idnscope {
namespace {

// ---- Result<T> --------------------------------------------------------------

Result<int> parse_positive(int value) {
  if (value <= 0) {
    return Err("test.negative", "value must be positive");
  }
  return value;
}

TEST(Result, ValueAndErrorPaths) {
  auto ok = parse_positive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(-1), 7);

  auto bad = parse_positive(-3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "test.negative");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOutOfValue) {
  Result<std::string> result = std::string("payload");
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ErrorEquality) {
  EXPECT_EQ(Err("a", "b"), Err("a", "b"));
  EXPECT_FALSE(Err("a", "b") == Err("a", "c"));
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1U);
}

TEST(Strings, SplitWhitespace) {
  auto parts = split_whitespace("  a\t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, LowerAscii) {
  EXPECT_EQ(to_lower_ascii("AbC-123"), "abc-123");
  // Multi-byte UTF-8 must pass through untouched.
  EXPECT_EQ(to_lower_ascii("Ä"), "Ä");
}

TEST(Strings, StartsWithCi) {
  EXPECT_TRUE(starts_with_ascii_ci("XN--abc", "xn--"));
  EXPECT_FALSE(starts_with_ascii_ci("xn-", "xn--"));
  EXPECT_TRUE(starts_with_ascii_ci("abc", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"solo"}, "."), "solo");
}

TEST(Strings, ParseU64) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("0", value));
  EXPECT_EQ(value, 0U);
  EXPECT_TRUE(parse_u64("18446744073709551615", value));
  EXPECT_EQ(value, ~std::uint64_t{0});
  EXPECT_FALSE(parse_u64("18446744073709551616", value));  // overflow
  EXPECT_FALSE(parse_u64("", value));
  EXPECT_FALSE(parse_u64("-1", value));
  EXPECT_FALSE(parse_u64("12a", value));
}

// ---- dates -----------------------------------------------------------------

TEST(Date, SerialKnownValues) {
  EXPECT_EQ((Date{1970, 1, 1}).to_serial(), 0);
  EXPECT_EQ((Date{1970, 1, 2}).to_serial(), 1);
  EXPECT_EQ((Date{2000, 3, 1}).to_serial(), 11017);
  EXPECT_EQ((Date{2017, 9, 21}).to_serial(), 17430);
}

TEST(Date, LeapYears) {
  EXPECT_TRUE(Date::is_leap(2000));
  EXPECT_TRUE(Date::is_leap(2016));
  EXPECT_FALSE(Date::is_leap(1900));
  EXPECT_FALSE(Date::is_leap(2017));
  EXPECT_EQ(Date::days_in_month(2016, 2), 29);
  EXPECT_EQ(Date::days_in_month(2017, 2), 28);
}

TEST(Date, Validity) {
  EXPECT_TRUE((Date{2017, 2, 28}).valid());
  EXPECT_FALSE((Date{2017, 2, 29}).valid());
  EXPECT_FALSE((Date{2017, 13, 1}).valid());
  EXPECT_FALSE((Date{2017, 0, 1}).valid());
}

TEST(Date, ParseAndFormat) {
  auto parsed = Date::parse("2017-09-21");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_string(), "2017-09-21");
  EXPECT_TRUE(Date::parse("2017/09/21").has_value());
  EXPECT_FALSE(Date::parse("2017-9-21").has_value());
  EXPECT_FALSE(Date::parse("2017-02-30").has_value());
  EXPECT_FALSE(Date::parse("2017.09.21").has_value());
  EXPECT_FALSE(Date::parse("garbage").has_value());
}

TEST(Date, SerialRoundTripProperty) {
  // Sweep a century of days through the civil <-> serial conversion.
  for (std::int64_t serial = -10000; serial <= 30000; serial += 7) {
    const Date date = Date::from_serial(serial);
    EXPECT_TRUE(date.valid());
    EXPECT_EQ(date.to_serial(), serial);
  }
}

TEST(Date, Arithmetic) {
  const Date start{2017, 9, 21};
  EXPECT_EQ(start.plus_days(10).to_string(), "2017-10-01");
  EXPECT_EQ(days_between(start, start.plus_days(118)), 118);
  EXPECT_LT(start, start.plus_days(1));
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependentOfParentDraws) {
  Rng parent(7);
  Rng child1 = parent.fork("tag");
  parent.next_u64();  // advancing the parent must not change fork results
  // (fork derives from a snapshot of state; re-fork from a fresh copy)
  Rng parent2(7);
  Rng child2 = parent2.fork("tag");
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  Rng other = parent2.fork("other");
  EXPECT_NE(child2.next_u64(), other.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t value = rng.uniform(5, 9);
    EXPECT_GE(value, 5U);
    EXPECT_LE(value, 9U);
  }
  EXPECT_EQ(rng.uniform(7, 7), 7U);
}

TEST(Rng, Uniform01Range) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.uniform01();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.normal();
    sum += value;
    sq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal(4.0, 1.5) < std::exp(4.0)) {
      ++below;
    }
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(Rng, ZipfConcentration) {
  Rng rng(19);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.zipf(100, 1.0)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(Rng, WeightedRespectsZeros) {
  Rng rng(23);
  const double weights[] = {0.0, 1.0, 0.0, 3.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.weighted(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[3], counts[1]);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, StableHashIsStable) {
  EXPECT_EQ(stable_hash64("example.com"), stable_hash64("example.com"));
  EXPECT_NE(stable_hash64("example.com"), stable_hash64("example.net"));
  EXPECT_NE(stable_hash64(""), stable_hash64("a"));
}

}  // namespace
}  // namespace idnscope
