// Lookalike candidate enumeration tests (the UC-SimList substitution step).
#include <gtest/gtest.h>

#include <set>

#include "idnscope/idna/idna.h"
#include "idnscope/idna/lookalike.h"
#include "idnscope/idna/punycode.h"

namespace idnscope::idna {
namespace {

TEST(Lookalike, PoolContainsOwnAndRelatedGlyphs) {
  const auto pool = ucsimlist_pool('o');
  ASSERT_FALSE(pool.empty());
  bool has_own = false;
  bool has_cross = false;
  for (const unicode::Homoglyph* glyph : pool) {
    if (glyph->ascii_base == 'o') {
      has_own = true;
    } else {
      has_cross = true;
      // Cross-letter entries must never be pixel-identical twins.
      EXPECT_NE(glyph->visual, unicode::VisualClass::kIdentical);
    }
  }
  EXPECT_TRUE(has_own);
  EXPECT_TRUE(has_cross);
}

TEST(Lookalike, CandidatesAreOnePerPositionAndGlyph) {
  const auto candidates = single_substitution_candidates("go.com");
  // 'g' and 'o' each contribute their pool size.
  const std::size_t expected =
      ucsimlist_pool('g').size() + ucsimlist_pool('o').size();
  EXPECT_EQ(candidates.size(), expected);
}

TEST(Lookalike, CandidatesAreWellFormed) {
  std::set<std::string> seen;
  for (const auto& candidate : single_substitution_candidates("google.com")) {
    // ACE form decodes back to the recorded Unicode SLD.
    EXPECT_TRUE(has_ace_prefix(candidate.ace_domain));
    EXPECT_TRUE(candidate.ace_domain.ends_with(".com"));
    const std::string label =
        candidate.ace_domain.substr(0, candidate.ace_domain.find('.'));
    auto decoded = label_to_unicode(label);
    ASSERT_TRUE(decoded.ok()) << candidate.ace_domain;
    EXPECT_EQ(decoded.value(), candidate.unicode_sld);
    // Exactly one position differs from the brand SLD.
    EXPECT_LT(candidate.position, 6U);
    EXPECT_EQ(candidate.unicode_sld[candidate.position], candidate.glyph);
    EXPECT_EQ("google"[candidate.position], candidate.replaced);
    seen.insert(candidate.ace_domain);
  }
  // Distinct glyphs at distinct positions give distinct domains.
  EXPECT_EQ(seen.size(), single_substitution_candidates("google.com").size());
}

TEST(Lookalike, CrossLetterFlagIsAccurate) {
  for (const auto& candidate : single_substitution_candidates("go.com")) {
    const unicode::Homoglyph* glyph = unicode::find_homoglyph(candidate.glyph);
    ASSERT_NE(glyph, nullptr);
    EXPECT_EQ(candidate.cross_letter, glyph->ascii_base != candidate.replaced);
  }
}

TEST(Lookalike, MultiLabelSuffixPreserved) {
  const auto candidates = single_substitution_candidates("gree.com.cn");
  ASSERT_FALSE(candidates.empty());
  for (const auto& candidate : candidates) {
    EXPECT_TRUE(candidate.ace_domain.ends_with(".com.cn"));
    EXPECT_EQ(candidate.unicode_sld.size(), 4U);  // only the SLD mutates
  }
}

TEST(Lookalike, SubstituteExplicitPositions) {
  const std::pair<std::size_t, char32_t> sub{0, 0x0430};
  auto domain = substitute("apple.com", {&sub, 1});
  ASSERT_TRUE(domain.has_value());
  EXPECT_TRUE(has_ace_prefix(*domain));
  auto display = domain_to_unicode(*domain);
  ASSERT_TRUE(display.ok());
  EXPECT_EQ(display.value(), "аpple.com");  // Cyrillic а
}

TEST(Lookalike, SubstituteRejectsOutOfRange) {
  const std::pair<std::size_t, char32_t> sub{10, 0x0430};
  EXPECT_FALSE(substitute("go.com", {&sub, 1}).has_value());
}

TEST(Lookalike, SubstituteRejectsDisallowedCodePoint) {
  const std::pair<std::size_t, char32_t> sub{0, U'!'};
  EXPECT_FALSE(substitute("go.com", {&sub, 1}).has_value());
}

TEST(Lookalike, DigitBrandHasCandidates) {
  // 58.com and 1688.com (Table XIV brands) are digit-only SLDs.
  EXPECT_FALSE(single_substitution_candidates("58.com").empty());
  EXPECT_FALSE(single_substitution_candidates("1688.com").empty());
}

}  // namespace
}  // namespace idnscope::idna
