// Longitudinal zone deltas (ecosystem/timeline.h, DESIGN.md §11): the
// strict delta codec, the seeded generator, the CLI `timeline` verb, and
// core::Study::apply_delta's replay contract against from-scratch studies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "idnscope/core/homograph.h"
#include "idnscope/core/semantic.h"
#include "idnscope/core/semantic_type2.h"
#include "idnscope/core/skeleton_index.h"
#include "idnscope/core/study.h"
#include "idnscope/dns/record.h"
#include "idnscope/dns/zone.h"
#include "idnscope/ecosystem/brands.h"
#include "idnscope/ecosystem/ecosystem.h"
#include "idnscope/ecosystem/scenario.h"
#include "idnscope/ecosystem/timeline.h"
#include "idnscope/obs/metrics.h"

namespace idnscope {
namespace {

using ecosystem::DayDelta;
using ecosystem::DeltaKind;
using ecosystem::DeltaRecord;

DayDelta sample_delta() {
  DayDelta delta;
  delta.day = 3;
  delta.seed = 20170921;
  delta.records = {
      {DeltaKind::kRegister, "xn--80ak6aa92e.com", true, 0},
      {DeltaKind::kRegister, "nod-7f3.net", false, 0},
      {DeltaKind::kExpire, "xn--fiq228c.org", true, 0},
      {DeltaKind::kBlacklistOn, "xn--80ak6aa92e.com", false, 3},
      {DeltaKind::kBlacklistOff, "xn--wgbl6a.xn--p1ai", false, 255},
  };
  return delta;
}

// --- codec ------------------------------------------------------------------

TEST(DeltaCodec, SerializeProducesTheDocumentedForm) {
  EXPECT_EQ(serialize_delta(sample_delta()),
            "$DELTA day 3 seed 20170921 records 5\n"
            "+ xn--80ak6aa92e.com idn\n"
            "+ nod-7f3.net ascii\n"
            "- xn--fiq228c.org idn\n"
            "B xn--80ak6aa92e.com 3\n"
            "b xn--wgbl6a.xn--p1ai 255\n");
}

TEST(DeltaCodec, RoundTripsEveryRecordKind) {
  const DayDelta delta = sample_delta();
  const auto parsed = ecosystem::parse_delta(serialize_delta(delta));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), delta);
}

TEST(DeltaCodec, RoundTripsAnEmptyDay) {
  DayDelta delta;
  delta.day = 1;
  delta.seed = 7;
  const auto parsed = ecosystem::parse_delta(serialize_delta(delta));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), delta);
}

struct ParseRejectCase {
  const char* name;
  const char* text;
  const char* code;
  const char* message;
};

class DeltaParseReject : public ::testing::TestWithParam<ParseRejectCase> {};

TEST_P(DeltaParseReject, RejectsLoudly) {
  const auto result = ecosystem::parse_delta(GetParam().text);
  ASSERT_FALSE(result.ok()) << GetParam().name;
  EXPECT_EQ(result.error().code, GetParam().code) << GetParam().name;
  EXPECT_EQ(result.error().message, GetParam().message) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DeltaParseReject,
    ::testing::Values(
        ParseRejectCase{"empty_input", "", "delta.bad_header",
                        "line 1: missing $DELTA header"},
        ParseRejectCase{"not_a_header", "hello world\n", "delta.bad_header",
                        "line 1: header must be '$DELTA day <d> seed <s> "
                        "records <n>'"},
        ParseRejectCase{"missing_field",
                        "$DELTA day 1 seed 7\n", "delta.bad_header",
                        "line 1: header must be '$DELTA day <d> seed <s> "
                        "records <n>'"},
        ParseRejectCase{"misspelled_keyword",
                        "$DELTA day 1 sed 7 records 0\n", "delta.bad_header",
                        "line 1: header must be '$DELTA day <d> seed <s> "
                        "records <n>'"},
        ParseRejectCase{"day_not_numeric",
                        "$DELTA day x seed 7 records 0\n", "delta.bad_header",
                        "line 1: bad day number"},
        ParseRejectCase{"day_overflows_u32",
                        "$DELTA day 4294967296 seed 7 records 0\n",
                        "delta.bad_header", "line 1: bad day number"},
        ParseRejectCase{"seed_not_numeric",
                        "$DELTA day 1 seed 7x records 0\n", "delta.bad_header",
                        "line 1: bad seed number"},
        ParseRejectCase{"count_not_numeric",
                        "$DELTA day 1 seed 7 records many\n",
                        "delta.bad_header", "line 1: bad record count"},
        ParseRejectCase{"record_too_short",
                        "$DELTA day 1 seed 7 records 1\n+ a.com\n",
                        "delta.bad_record",
                        "line 2: record needs exactly 3 fields"},
        ParseRejectCase{"record_too_long",
                        "$DELTA day 1 seed 7 records 1\n+ a.com idn extra\n",
                        "delta.bad_record",
                        "line 2: record needs exactly 3 fields"},
        ParseRejectCase{"unknown_kind",
                        "$DELTA day 1 seed 7 records 1\n* a.com idn\n",
                        "delta.bad_record", "line 2: unknown record kind '*'"},
        ParseRejectCase{"uppercase_domain",
                        "$DELTA day 1 seed 7 records 1\n+ A.com idn\n",
                        "delta.bad_domain",
                        "line 2: domain must be lowercase ACE [a-z0-9.-] "
                        "with a TLD"},
        ParseRejectCase{"domain_without_tld",
                        "$DELTA day 1 seed 7 records 1\n+ nodot idn\n",
                        "delta.bad_domain",
                        "line 2: domain must be lowercase ACE [a-z0-9.-] "
                        "with a TLD"},
        ParseRejectCase{"raw_unicode_domain",
                        "$DELTA day 1 seed 7 records 1\n+ caf\xC3\xA9.com "
                        "idn\n",
                        "delta.bad_domain",
                        "line 2: domain must be lowercase ACE [a-z0-9.-] "
                        "with a TLD"},
        ParseRejectCase{"bad_flag",
                        "$DELTA day 1 seed 7 records 1\n+ a.com maybe\n",
                        "delta.bad_record",
                        "line 2: flag must be 'idn' or 'ascii'"},
        ParseRejectCase{"mask_zero",
                        "$DELTA day 1 seed 7 records 1\nB xn--a.com 0\n",
                        "delta.bad_mask", "line 2: mask must be 1..255"},
        ParseRejectCase{"mask_too_big",
                        "$DELTA day 1 seed 7 records 1\nB xn--a.com 256\n",
                        "delta.bad_mask", "line 2: mask must be 1..255"},
        ParseRejectCase{"empty_line_mid_file",
                        "$DELTA day 1 seed 7 records 2\n+ a.com ascii\n\n"
                        "+ b.com ascii\n",
                        "delta.bad_record", "line 3: empty line"},
        ParseRejectCase{"too_few_records",
                        "$DELTA day 1 seed 7 records 2\n+ a.com ascii\n",
                        "delta.bad_count",
                        "header announces 2 records but 1 followed"},
        ParseRejectCase{"too_many_records",
                        "$DELTA day 1 seed 7 records 0\n+ a.com ascii\n",
                        "delta.bad_count",
                        "header announces 0 records but 1 followed"}),
    [](const auto& info) { return info.param.name; });

TEST(DeltaCodec, DomainIdnFlagFollowsTheZoneScannersRule) {
  EXPECT_TRUE(ecosystem::delta_domain_is_idn("xn--80ak6aa92e.com"));
  EXPECT_TRUE(ecosystem::delta_domain_is_idn("ascii-label.xn--p1ai"));
  EXPECT_FALSE(ecosystem::delta_domain_is_idn("paypal.com"));
  EXPECT_FALSE(ecosystem::delta_domain_is_idn("nod-7f3.net"));
}

TEST(DeltaCodec, InvertSwapsKindsAndReversesOrder) {
  const DayDelta delta = sample_delta();
  const DayDelta inverted = ecosystem::invert_delta(delta);
  EXPECT_EQ(inverted.day, delta.day);
  EXPECT_EQ(inverted.seed, delta.seed);
  ASSERT_EQ(inverted.records.size(), delta.records.size());
  const std::vector<DeltaRecord> expected = {
      {DeltaKind::kBlacklistOn, "xn--wgbl6a.xn--p1ai", false, 255},
      {DeltaKind::kBlacklistOff, "xn--80ak6aa92e.com", false, 3},
      {DeltaKind::kRegister, "xn--fiq228c.org", true, 0},
      {DeltaKind::kExpire, "nod-7f3.net", false, 0},
      {DeltaKind::kExpire, "xn--80ak6aa92e.com", true, 0},
  };
  EXPECT_EQ(inverted.records, expected);
  // Inversion is an involution.
  EXPECT_EQ(ecosystem::invert_delta(inverted), delta);
}

// --- day parsing ------------------------------------------------------------

TEST(ParseDay, AcceptsWholeBase10U32Only) {
  std::uint32_t day = 99;
  EXPECT_TRUE(ecosystem::parse_day("0", &day));
  EXPECT_EQ(day, 0u);
  EXPECT_TRUE(ecosystem::parse_day("36500", &day));
  EXPECT_EQ(day, 36500u);
  EXPECT_TRUE(ecosystem::parse_day("4294967295", &day));
  EXPECT_EQ(day, 4294967295u);
  EXPECT_FALSE(ecosystem::parse_day("", &day));
  EXPECT_FALSE(ecosystem::parse_day("+3", &day));
  EXPECT_FALSE(ecosystem::parse_day("-3", &day));
  EXPECT_FALSE(ecosystem::parse_day("3 ", &day));
  EXPECT_FALSE(ecosystem::parse_day("3x", &day));
  EXPECT_FALSE(ecosystem::parse_day("4294967296", &day));
  EXPECT_FALSE(ecosystem::parse_day("99999999999999999999", &day));
}

TEST(ParseDayRange, SingleDayAndClosedRanges) {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  EXPECT_TRUE(ecosystem::parse_day_range("5", &first, &last));
  EXPECT_EQ(first, 5u);
  EXPECT_EQ(last, 5u);
  EXPECT_TRUE(ecosystem::parse_day_range("2..5", &first, &last));
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(last, 5u);
  EXPECT_TRUE(ecosystem::parse_day_range("7..7", &first, &last));
  EXPECT_EQ(first, 7u);
  EXPECT_EQ(last, 7u);
  EXPECT_FALSE(ecosystem::parse_day_range("3..1", &first, &last));
  EXPECT_FALSE(ecosystem::parse_day_range("..5", &first, &last));
  EXPECT_FALSE(ecosystem::parse_day_range("5..", &first, &last));
  EXPECT_FALSE(ecosystem::parse_day_range("2..x", &first, &last));
  EXPECT_FALSE(ecosystem::parse_day_range("2...5", &first, &last));
  EXPECT_FALSE(ecosystem::parse_day_range("", &first, &last));
}

// --- CLI verb (obsctl-style goldens over run_timeline) ----------------------

struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult run_timeline(std::vector<std::string> args) {
  CliResult result;
  result.code = ecosystem::run_timeline(args, result.out, result.err);
  return result;
}

TEST(TimelineCli, UsageOnMissingOrExcessArgs) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {}, {"1", "9", "1000", "20", "extra"}}) {
    const CliResult result = run_timeline(args);
    EXPECT_EQ(result.code, 2);
    EXPECT_TRUE(result.out.empty());
    EXPECT_EQ(result.err.substr(0, 24), "usage: idnscope timeline");
  }
}

TEST(TimelineCli, RejectsMalformedDays) {
  for (const char* bad : {"abc", "3..1", "1x", "-2"}) {
    const CliResult result = run_timeline({bad});
    EXPECT_EQ(result.code, 2) << bad;
    EXPECT_EQ(result.err,
              "timeline: days must be whole base-10 integers, '<day>' or "
              "'<first>..<last>' with first <= last; got \"" +
                  std::string(bad) + "\"\n");
  }
}

TEST(TimelineCli, RejectsDayZero) {
  const CliResult result = run_timeline({"0"});
  EXPECT_EQ(result.code, 2);
  EXPECT_EQ(result.err,
            "timeline: day 0 is the generator snapshot, not a delta; days "
            "start at 1\n");
  // ...including when day 0 only starts the range.
  const CliResult range = run_timeline({"0..3"});
  EXPECT_EQ(range.code, 2);
  EXPECT_EQ(range.err, result.err);
}

TEST(TimelineCli, RejectsDaysPastTheReplayHorizon) {
  const CliResult result = run_timeline({"36501"});
  EXPECT_EQ(result.code, 2);
  EXPECT_EQ(result.err,
            "timeline: day 36501 exceeds the replay horizon (36500)\n");
}

TEST(TimelineCli, RejectsMalformedSeedAndScales) {
  const CliResult seed = run_timeline({"1", "20abc"});
  EXPECT_EQ(seed.code, 2);
  EXPECT_EQ(seed.err,
            "timeline: seed must be a whole base-10 integer (it selects the "
            "synthetic world); got \"20abc\"\n");
  const CliResult scale = run_timeline({"1", "9", "0"});
  EXPECT_EQ(scale.code, 2);
  EXPECT_EQ(scale.err,
            "timeline: scale arguments are divisors and must be whole "
            "integers >= 1; got \"0\"\n");
  const CliResult abuse = run_timeline({"1", "9", "1000", "2x"});
  EXPECT_EQ(abuse.code, 2);
  EXPECT_EQ(abuse.err,
            "timeline: scale arguments are divisors and must be whole "
            "integers >= 1; got \"2x\"\n");
}

TEST(TimelineCli, EmitsCanonicalDeltasDeterministically) {
  // Scaled down (1000/20 divisors = the tiny-world population) so the CLI
  // path stays unit-test fast.
  const CliResult first = run_timeline({"1..2", "20170921", "1000", "20"});
  ASSERT_EQ(first.code, 0) << first.err;
  EXPECT_TRUE(first.err.empty());
  EXPECT_EQ(first.out.substr(0, 26), "$DELTA day 1 seed 20170921");
  // Both requested days appear, in order.
  EXPECT_NE(first.out.find("\n$DELTA day 2 seed 20170921"), std::string::npos);
  // Every line of the output re-parses: the stream is two valid blocks.
  const std::size_t day2 = first.out.find("$DELTA day 2");
  ASSERT_NE(day2, std::string::npos);
  const auto block1 = ecosystem::parse_delta(first.out.substr(0, day2));
  const auto block2 = ecosystem::parse_delta(first.out.substr(day2));
  ASSERT_TRUE(block1.ok()) << block1.error().message;
  ASSERT_TRUE(block2.ok()) << block2.error().message;
  EXPECT_EQ(block1.value().day, 1u);
  EXPECT_EQ(block2.value().day, 2u);

  // Same args, same bytes.
  const CliResult again = run_timeline({"1..2", "20170921", "1000", "20"});
  ASSERT_EQ(again.code, 0);
  EXPECT_EQ(again.out, first.out);

  // A subsetted range replays through the unprinted prefix: "2" alone is
  // exactly the day-2 block of "1..2".
  const CliResult tail = run_timeline({"2", "20170921", "1000", "20"});
  ASSERT_EQ(tail.code, 0);
  EXPECT_EQ(tail.out, first.out.substr(day2));
}

// --- generator --------------------------------------------------------------

TEST(Timeline, TwoInstancesOverTheSameWorldEmitIdenticalStreams) {
  const auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Timeline a(eco);
  ecosystem::Timeline b(eco);
  EXPECT_EQ(a.day(), 0u);
  for (int day = 1; day <= 3; ++day) {
    const DayDelta da = a.next();
    const DayDelta db = b.next();
    EXPECT_EQ(da, db) << "day " << day;
    EXPECT_EQ(da.day, static_cast<std::uint32_t>(day));
    EXPECT_EQ(da.seed, eco.scenario.seed);
    EXPECT_FALSE(da.records.empty());
  }
  EXPECT_EQ(a.day(), 3u);
}

TEST(Timeline, DeltasApplyCleanlyToTheGeneratingWorld) {
  auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Timeline timeline(eco);
  ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
  for (int day = 1; day <= 5; ++day) {
    const DayDelta delta = timeline.next();
    const auto stats = ecosystem::apply_delta(eco, state, delta);
    ASSERT_TRUE(stats.ok()) << "day " << day << ": " << stats.error().message;
    EXPECT_EQ(stats.value().registrations +
                  stats.value().expiries +
                  stats.value().blacklist_on +
                  stats.value().blacklist_off,
              delta.records.size());
    // The generator's own post-fold state agrees with the applied state.
    EXPECT_EQ(state.day, timeline.day());
    EXPECT_EQ(state.live_count(), timeline.state().live_count());
    EXPECT_EQ(state.live_idn_count(), timeline.state().live_idn_count());
  }
}

// --- Study::apply_delta (the replay contract) -------------------------------

std::vector<std::string> sorted_strings(const core::Study& study,
                                        std::span<const runtime::DomainId> ids) {
  std::vector<std::string> out = study.resolve(ids);
  std::sort(out.begin(), out.end());
  return out;
}

void expect_groups_equal(const core::Study& incremental,
                         const core::Study& fresh) {
  const auto& a = incremental.tld_groups();
  const auto& b = fresh.tld_groups();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].sld_count, b[i].sld_count) << a[i].name;
    EXPECT_EQ(a[i].idn_count, b[i].idn_count) << a[i].name;
    EXPECT_EQ(a[i].whois_count, b[i].whois_count) << a[i].name;
    EXPECT_EQ(a[i].blacklist_virustotal, b[i].blacklist_virustotal)
        << a[i].name;
    EXPECT_EQ(a[i].blacklist_360, b[i].blacklist_360) << a[i].name;
    EXPECT_EQ(a[i].blacklist_baidu, b[i].blacklist_baidu) << a[i].name;
    EXPECT_EQ(a[i].blacklist_total, b[i].blacklist_total) << a[i].name;
  }
}

TEST(StudyApplyDelta, ReplaysFieldIdenticalToFromScratchStudies) {
  auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  // Pre-generate the stream before the world starts mutating.
  ecosystem::Timeline timeline(eco);
  std::vector<DayDelta> deltas;
  for (int day = 1; day <= 5; ++day) {
    deltas.push_back(timeline.next());
  }
  core::Study study(eco);
  ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
  for (const DayDelta& delta : deltas) {
    // Eco first (the WHOIS join for new registrations reads eco().whois),
    // then the incremental study.
    ASSERT_TRUE(ecosystem::apply_delta(eco, state, delta).ok());
    const auto applied = study.apply_delta(delta);
    ASSERT_TRUE(applied.ok()) << "day " << delta.day << ": "
                              << applied.error().message;
    EXPECT_EQ(study.day(), delta.day);

    const core::Study fresh(eco);
    expect_groups_equal(study, fresh);
    EXPECT_EQ(sorted_strings(study, study.idns()),
              sorted_strings(fresh, fresh.idns()));
    EXPECT_EQ(sorted_strings(study, study.malicious_idns()),
              sorted_strings(fresh, fresh.malicious_idns()));
  }
}

TEST(StudyApplyDelta, RedetectsExactlyTheRegisteredIdns) {
  auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Timeline timeline(eco);
  const DayDelta delta = timeline.next();
  core::Study study(eco);  // over the pre-delta snapshot
  ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
  ASSERT_TRUE(ecosystem::apply_delta(eco, state, delta).ok());

  const core::HomographDetector homograph(ecosystem::alexa_top1k());
  const core::SemanticDetector semantic(ecosystem::alexa_top1k());
  const core::Type2Detector type2;
  const core::DeltaDetectors detectors{&homograph, &semantic, &type2};

  obs::Counter redetected =
      obs::Registry::global().counter("core.delta.redetected");
  const std::uint64_t before = redetected.value();
  const auto applied = study.apply_delta(delta, &detectors);
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  // One verdict per newly-registered IDN, in record order; the counter
  // proves only the touched domains were probed.
  EXPECT_EQ(applied.value().verdicts.size(),
            applied.value().registered_idns.size());
  EXPECT_EQ(redetected.value() - before,
            applied.value().registered_idns.size());
  for (std::size_t i = 0; i < applied.value().verdicts.size(); ++i) {
    EXPECT_EQ(applied.value().verdicts[i].id,
              applied.value().registered_idns[i]);
  }
}

TEST(StudyApplyDelta, FeedsTheSkeletonIndexOverlay) {
  auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Timeline timeline(eco);
  const DayDelta delta = timeline.next();
  core::Study study(eco);  // over the pre-delta snapshot
  ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
  ASSERT_TRUE(ecosystem::apply_delta(eco, state, delta).ok());

  const core::SkeletonIndex& index = study.skeleton_index();  // force build
  EXPECT_EQ(index.overlay_postings(), 0u);
  const auto applied = study.apply_delta(delta);
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  // Every registered IDN whose display form skeletonizes lands in the
  // overlay; the generated stream always contains at least the Cyrillic
  // confusable variants, so the overlay cannot stay empty.
  EXPECT_GT(index.overlay_postings(), 0u);
  EXPECT_LE(index.overlay_postings(), applied.value().registered_idns.size());
}

TEST(StudyApplyDelta, CloneAdvancesIndependentlyOfTheOriginal) {
  auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Timeline timeline(eco);
  const DayDelta delta = timeline.next();
  core::Study original(eco);  // over the pre-delta snapshot
  ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
  ASSERT_TRUE(ecosystem::apply_delta(eco, state, delta).ok());

  const std::size_t idns_before = original.idns().size();
  const auto totals_before = original.totals();

  core::Study next = original.clone();
  const auto applied = next.apply_delta(delta);
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  EXPECT_EQ(next.day(), 1u);

  // The published study is untouched while its successor advanced.
  EXPECT_EQ(original.day(), 0u);
  EXPECT_EQ(original.idns().size(), idns_before);
  EXPECT_EQ(original.totals().sld_count, totals_before.sld_count);
  EXPECT_EQ(original.totals().blacklist_total, totals_before.blacklist_total);
  EXPECT_NE(next.idns().size(), idns_before);  // tiny-world days always churn
  // Interned ids agree across the clone boundary for surviving domains.
  const runtime::DomainId id = original.idns().front();
  EXPECT_EQ(original.domain(id), next.domain(id));
}

TEST(StudyApplyDelta, OutOfOrderDayRejectsIdenticallyOnBothPaths) {
  auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Timeline timeline(eco);
  DayDelta delta = timeline.next();
  delta.day = 3;  // state is at day 0; only day 1 may follow

  core::Study study(eco);
  const auto study_err = study.apply_delta(delta);
  ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
  const auto eco_err = ecosystem::apply_delta(eco, state, delta);

  ASSERT_FALSE(study_err.ok());
  ASSERT_FALSE(eco_err.ok());
  EXPECT_EQ(study_err.error().code, "delta.bad_day");
  EXPECT_EQ(eco_err.error().code, "delta.bad_day");
  EXPECT_EQ(study_err.error().message, eco_err.error().message);
  EXPECT_EQ(study_err.error().message, "delta day 3 does not follow day 0");
  // A rejected delta leaves the day untouched.
  EXPECT_EQ(study.day(), 0u);
  EXPECT_EQ(state.day, 0u);
}

}  // namespace
}  // namespace idnscope
