// Study (zone scanning + joins) tests.
#include <gtest/gtest.h>

#include <set>

#include "idnscope/core/study.h"

namespace idnscope::core {
namespace {

const ecosystem::Ecosystem& tiny_eco() {
  static const ecosystem::Ecosystem eco =
      ecosystem::generate(ecosystem::Scenario::tiny());
  return eco;
}

const Study& tiny_study() {
  static const Study study(tiny_eco());
  return study;
}

TEST(Study, ZoneScanRecoversGeneratedIdns) {
  const auto idn_strings = tiny_study().idn_strings();
  const std::set<std::string> scanned(idn_strings.begin(), idn_strings.end());
  const std::set<std::string> generated(tiny_eco().idns.begin(),
                                        tiny_eco().idns.end());
  EXPECT_EQ(scanned, generated);
}

TEST(Study, GroupsSumToTotals) {
  const TldGroup total = tiny_study().totals();
  std::uint64_t idn_sum = 0;
  std::uint64_t sld_sum = 0;
  for (const TldGroup& group : tiny_study().tld_groups()) {
    idn_sum += group.idn_count;
    sld_sum += group.sld_count;
  }
  EXPECT_EQ(total.idn_count, idn_sum);
  EXPECT_EQ(total.sld_count, sld_sum);
  EXPECT_EQ(total.idn_count, tiny_study().idns().size());
}

TEST(Study, FourGroupsInTableOrder) {
  const auto& groups = tiny_study().tld_groups();
  ASSERT_EQ(groups.size(), 4U);
  EXPECT_EQ(groups[0].name, "com");
  EXPECT_EQ(groups[1].name, "net");
  EXPECT_EQ(groups[2].name, "org");
  EXPECT_EQ(groups[3].name, "iTLD (53)");
  // All iTLD SLDs are IDNs by definition.
  EXPECT_EQ(groups[3].sld_count, groups[3].idn_count);
}

TEST(Study, BlacklistJoinMatchesEcosystem) {
  const Study& study = tiny_study();
  std::size_t malicious = 0;
  for (const runtime::DomainId id : study.idns()) {
    if (study.is_malicious(id)) {
      ++malicious;
      EXPECT_NE(study.blacklist_mask(id), 0U);
      // The id-based verdict agrees with the string-based join.
      EXPECT_EQ(study.blacklist_mask(id), study.blacklist_mask(study.domain(id)));
    }
  }
  EXPECT_EQ(malicious, study.malicious_idns().size());
  EXPECT_EQ(malicious, study.totals().blacklist_total);
}

TEST(Study, SourceCountsAtLeastTotal) {
  // Every blacklisted domain carries at least one source bit.
  const TldGroup total = tiny_study().totals();
  EXPECT_GE(total.blacklist_virustotal + total.blacklist_360 +
                total.blacklist_baidu,
            total.blacklist_total);
}

TEST(Study, IdnsUnderFiltersByTld) {
  const Study& study = tiny_study();
  const auto com = study.idns_under("com");
  for (const runtime::DomainId id : com) {
    EXPECT_TRUE(study.domain(id).ends_with(".com"));
  }
  const auto itld = study.idns_under_itlds();
  EXPECT_EQ(itld.size(), study.tld_groups()[3].idn_count);
  EXPECT_EQ(com.size() + study.idns_under("net").size() +
                study.idns_under("org").size() + itld.size(),
            study.idns().size());
}

TEST(Study, IsRegisteredCoversSampleAndIdns) {
  const Study& study = tiny_study();
  for (const std::string& domain : tiny_eco().sampled_non_idns) {
    EXPECT_TRUE(study.is_registered(domain)) << domain;
  }
  EXPECT_FALSE(study.is_registered("definitely-not-registered-xyz.com"));
}

}  // namespace
}  // namespace idnscope::core
