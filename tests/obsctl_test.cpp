// obsctl toolbox tests: the diff/top/merge/explain/prov-diff verbs and the
// CI perf gate, driven through run_obsctl — the exact code path the shipped
// CLI uses — including the golden exit-code cases the gate contract
// promises (pass, injected metric regression, wall-time regression,
// missing baseline, unknown explain subject).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "idnscope/obs/export.h"
#include "idnscope/obs/metrics.h"
#include "idnscope/obs/obsctl.h"
#include "idnscope/obs/trace.h"

namespace idnscope {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  CliResult result;
  result.code = obs::run_obsctl(args, result.out, result.err);
  return result;
}

// Per-test scratch directory under gtest's temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "obsctl_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr) << path;
  std::fprintf(out, "%s\n", content.c_str());
  std::fclose(out);
}

obs::Snapshot sample_snapshot() {
  obs::Snapshot snapshot;
  snapshot.counters["core.homograph.domains_scanned"] = 120;
  snapshot.counters["core.homograph.pairs_compared"] = 960;
  snapshot.gauges["runtime.domain_table.entries"] = 120;
  obs::HistogramSnapshot hist;
  hist.bounds_micros = {obs::to_micros(0.5), obs::to_micros(0.9)};
  hist.counts = {10, 20, 30};
  hist.count = 60;
  hist.sum_micros = 123456;
  snapshot.histograms["core.homograph.ssim"] = hist;
  return snapshot;
}

// --- diff ------------------------------------------------------------------

TEST(ObsctlDiff, EqualSnapshotsExitZero) {
  const std::string dir = scratch_dir("diff_equal");
  const std::string json = obs::snapshot_to_json(sample_snapshot());
  write_file(dir + "/a.json", json);
  write_file(dir + "/b.json", json);
  const auto result = run({"diff", dir + "/a.json", dir + "/b.json"});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_NE(result.out.find("snapshots identical"), std::string::npos);
  EXPECT_EQ(result.err, "");
}

TEST(ObsctlDiff, ReportsChangedAndAbsentMetrics) {
  const std::string dir = scratch_dir("diff_changed");
  obs::Snapshot a = sample_snapshot();
  obs::Snapshot b = a;
  b.counters["core.homograph.pairs_compared"] = 959;  // drifted
  b.gauges.erase("runtime.domain_table.entries");     // vanished
  write_file(dir + "/a.json", obs::snapshot_to_json(a));
  write_file(dir + "/b.json", obs::snapshot_to_json(b));
  const auto result = run({"diff", dir + "/a.json", dir + "/b.json"});
  EXPECT_EQ(result.code, obs::kObsctlDiffers);
  EXPECT_NE(
      result.out.find("counter core.homograph.pairs_compared: 960 -> 959"),
      std::string::npos);
  EXPECT_NE(result.out.find("gauge runtime.domain_table.entries: 120 -> absent"),
            std::string::npos);
}

TEST(ObsctlDiff, MalformedOrMissingInputExitsTwo) {
  const std::string dir = scratch_dir("diff_bad");
  write_file(dir + "/garbage.json", "not a snapshot");
  write_file(dir + "/ok.json", obs::snapshot_to_json(sample_snapshot()));
  EXPECT_EQ(run({"diff", dir + "/garbage.json", dir + "/ok.json"}).code,
            obs::kObsctlError);
  EXPECT_EQ(run({"diff", dir + "/ok.json", dir + "/does_not_exist.json"}).code,
            obs::kObsctlError);
  EXPECT_EQ(run({"diff", dir + "/ok.json"}).code, obs::kObsctlError);
}

// --- top -------------------------------------------------------------------

TEST(ObsctlTop, RanksCountersDescending) {
  const std::string dir = scratch_dir("top_counters");
  write_file(dir + "/m.json", obs::snapshot_to_json(sample_snapshot()));
  const auto result = run({"top", dir + "/m.json", "-n", "1"});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_EQ(result.out, "960\tcore.homograph.pairs_compared\n");
}

TEST(ObsctlTop, RanksTraceSpansByTotalDuration) {
  obs::reset_trace();
  { const obs::StageTimer stage("obsctl_top_stage"); }
  const std::string dir = scratch_dir("top_trace");
  write_file(dir + "/t.json", obs::trace_events_to_json());
  const auto result = run({"top", dir + "/t.json"});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_NE(result.out.find("us\tobsctl_top_stage\n"), std::string::npos);
}

TEST(ObsctlTop, RejectsMalformedCount) {
  // The exit-code contract (2 = usage error) only holds if a malformed -n
  // is refused outright — strtoul's prefix parse used to turn `-n 5x` into
  // a silent `-n 5`.  No file IO happens before the parse, so the metrics
  // path can be a dummy.
  for (const char* bad : {"5x", "0", "", "+5", "-3", "0x10",
                          "18446744073709551616"}) {
    const auto result = run({"top", "unused.json", "-n", bad});
    EXPECT_EQ(result.code, obs::kObsctlError) << "-n " << bad;
    EXPECT_NE(result.err.find("-n must be a whole integer >= 1"),
              std::string::npos)
        << "-n " << bad;
  }
  // The boundary case the old code got right must keep working.
  const std::string dir = scratch_dir("top_strict_ok");
  write_file(dir + "/m.json", obs::snapshot_to_json(sample_snapshot()));
  EXPECT_EQ(run({"top", dir + "/m.json", "-n", "5"}).code, obs::kObsctlOk);
}

TEST(ObsctlGate, RejectsMalformedWallTolerance) {
  for (const char* bad : {"25x", "0", "-1", "nan", ""}) {
    const auto result = run({"gate", "b", "f", "bench", "--wall-tolerance",
                             bad});
    EXPECT_EQ(result.code, obs::kObsctlError) << "--wall-tolerance " << bad;
    EXPECT_NE(result.err.find("--wall-tolerance must be a positive number"),
              std::string::npos)
        << "--wall-tolerance " << bad;
  }
}

TEST(ObsctlTop, RejectsFilesThatAreNeitherFormat) {
  const std::string dir = scratch_dir("top_bad");
  write_file(dir + "/x.json", "{\"neither\":true}");
  const auto result = run({"top", dir + "/x.json"});
  EXPECT_EQ(result.code, obs::kObsctlError);
  EXPECT_NE(result.err.find("neither"), std::string::npos);
}

// --- merge -----------------------------------------------------------------

TEST(ObsctlMerge, AddsCountersAndHistogramsMaxesGauges) {
  obs::Snapshot a = sample_snapshot();
  obs::Snapshot b = sample_snapshot();
  b.counters["core.homograph.domains_scanned"] = 30;
  b.gauges["runtime.domain_table.entries"] = 150;

  const std::string dir = scratch_dir("merge");
  write_file(dir + "/a.json", obs::snapshot_to_json(a));
  write_file(dir + "/b.json", obs::snapshot_to_json(b));
  const auto result =
      run({"merge", dir + "/out.json", dir + "/a.json", dir + "/b.json"});
  ASSERT_EQ(result.code, obs::kObsctlOk);

  std::FILE* in = std::fopen((dir + "/out.json").c_str(), "rb");
  ASSERT_NE(in, nullptr);
  char buffer[65536];
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer), in);
  std::fclose(in);
  std::string json(buffer, got);
  while (!json.empty() && json.back() == '\n') {
    json.pop_back();
  }
  const auto merged = obs::parse_snapshot(json);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->counters.at("core.homograph.domains_scanned"), 150U);
  EXPECT_EQ(merged->counters.at("core.homograph.pairs_compared"), 1920U);
  EXPECT_EQ(merged->gauges.at("runtime.domain_table.entries"), 150);
  EXPECT_EQ(merged->histograms.at("core.homograph.ssim").count, 120U);
}

TEST(ObsctlMerge, DisjointHistogramInventoriesUnionize) {
  // Shard snapshots from different pipeline stages can carry completely
  // different histogram sets; the merge is their union, each untouched.
  obs::Snapshot a = sample_snapshot();
  obs::Snapshot b;
  obs::HistogramSnapshot other;
  other.bounds_micros = {obs::to_micros(0.1)};
  other.counts = {4, 5};
  other.count = 9;
  other.sum_micros = 42;
  b.histograms["core.availability.ssim"] = other;

  const std::string dir = scratch_dir("merge_disjoint");
  write_file(dir + "/a.json", obs::snapshot_to_json(a));
  write_file(dir + "/b.json", obs::snapshot_to_json(b));
  const auto result =
      run({"merge", dir + "/out.json", dir + "/a.json", dir + "/b.json"});
  ASSERT_EQ(result.code, obs::kObsctlOk);

  std::FILE* in = std::fopen((dir + "/out.json").c_str(), "rb");
  ASSERT_NE(in, nullptr);
  char buffer[65536];
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer), in);
  std::fclose(in);
  std::string json(buffer, got);
  while (!json.empty() && json.back() == '\n') {
    json.pop_back();
  }
  const auto merged = obs::parse_snapshot(json);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->histograms.size(), 2U);
  EXPECT_EQ(merged->histograms.at("core.homograph.ssim"),
            a.histograms.at("core.homograph.ssim"));
  EXPECT_EQ(merged->histograms.at("core.availability.ssim"), other);
}

TEST(ObsctlMerge, HistogramBoundsMismatchIsAnError) {
  obs::Snapshot a = sample_snapshot();
  obs::Snapshot b = sample_snapshot();
  b.histograms["core.homograph.ssim"].bounds_micros = {obs::to_micros(0.25),
                                                       obs::to_micros(0.75)};
  const std::string dir = scratch_dir("merge_bounds");
  write_file(dir + "/a.json", obs::snapshot_to_json(a));
  write_file(dir + "/b.json", obs::snapshot_to_json(b));
  const auto result =
      run({"merge", dir + "/out.json", dir + "/a.json", dir + "/b.json"});
  EXPECT_EQ(result.code, obs::kObsctlError);
  EXPECT_NE(result.err.find("bounds differ"), std::string::npos);
}

// --- gate: the CI perf-regression contract ---------------------------------

constexpr char kBench[] = "unit_bench";

void seed_gate_dirs(const std::string& baseline_dir,
                    const std::string& fresh_dir, const obs::Snapshot& fresh,
                    double baseline_wall_ms, double fresh_wall_ms) {
  const auto bench_line = [](double wall_ms) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"%s\",\"wall_ms\":%.3f,\"threads\":1}", kBench,
                  wall_ms);
    return std::string(line);
  };
  write_file(baseline_dir + "/METRICS_" + kBench + ".json",
             obs::snapshot_to_json(sample_snapshot()));
  write_file(baseline_dir + "/BENCH_" + kBench + ".json",
             bench_line(baseline_wall_ms));
  write_file(fresh_dir + "/METRICS_" + kBench + ".json",
             obs::snapshot_to_json(fresh));
  write_file(fresh_dir + "/BENCH_" + kBench + ".json",
             bench_line(fresh_wall_ms));
}

TEST(ObsctlGate, PassesWhenMetricsMatchAndWallWithinTolerance) {
  const std::string baseline = scratch_dir("gate_pass_baseline");
  const std::string fresh = scratch_dir("gate_pass_fresh");
  seed_gate_dirs(baseline, fresh, sample_snapshot(), 10.0, 20.0);
  const auto result = run({"gate", baseline, fresh, kBench});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_NE(result.out.find("gate ok"), std::string::npos);
  EXPECT_EQ(result.err, "");
}

TEST(ObsctlGate, InjectedMetricRegressionFailsWithDiff) {
  const std::string baseline = scratch_dir("gate_metric_baseline");
  const std::string fresh = scratch_dir("gate_metric_fresh");
  obs::Snapshot regressed = sample_snapshot();
  // The injected regression: the scan silently covered one domain fewer.
  regressed.counters["core.homograph.domains_scanned"] = 119;
  seed_gate_dirs(baseline, fresh, regressed, 10.0, 10.0);
  const auto result = run({"gate", baseline, fresh, kBench});
  EXPECT_EQ(result.code, obs::kObsctlDiffers);
  EXPECT_NE(
      result.err.find("counter core.homograph.domains_scanned: 120 -> 119"),
      std::string::npos);
  EXPECT_NE(result.err.find("drifted"), std::string::npos);
}

TEST(ObsctlGate, WallTimeRegressionBeyondToleranceFails) {
  const std::string baseline = scratch_dir("gate_wall_baseline");
  const std::string fresh = scratch_dir("gate_wall_fresh");
  seed_gate_dirs(baseline, fresh, sample_snapshot(), 1.0, 100.0);
  const auto result =
      run({"gate", baseline, fresh, kBench, "--wall-tolerance", "2.0"});
  EXPECT_EQ(result.code, obs::kObsctlDiffers);
  EXPECT_NE(result.err.find("exceeds budget"), std::string::npos);

  // The same pair passes once the tolerance covers the gap.
  const auto relaxed =
      run({"gate", baseline, fresh, kBench, "--wall-tolerance", "200"});
  EXPECT_EQ(relaxed.code, obs::kObsctlOk);
}

TEST(ObsctlGate, MissingBaselineExitsTwo) {
  const std::string baseline = scratch_dir("gate_missing_baseline");
  const std::string fresh = scratch_dir("gate_missing_fresh");
  write_file(fresh + "/METRICS_" + kBench + ".json",
             obs::snapshot_to_json(sample_snapshot()));
  write_file(fresh + "/BENCH_" + kBench + ".json",
             "{\"bench\":\"unit_bench\",\"wall_ms\":10.000,\"threads\":1}");
  const auto result = run({"gate", baseline, fresh, kBench});
  EXPECT_EQ(result.code, obs::kObsctlError);
  EXPECT_NE(result.err.find("missing baseline"), std::string::npos);
}

// --- gate --budget: byte-budget ceilings (docs/OBSERVABILITY.md) -----------

TEST(ObsctlGate, BudgetPassesAtOrUnderCeilingFailsOver) {
  const std::string baseline = scratch_dir("gate_budget_baseline");
  const std::string fresh = scratch_dir("gate_budget_fresh");
  seed_gate_dirs(baseline, fresh, sample_snapshot(), 10.0, 10.0);
  // Ceilings ride the snapshot format, in "gauges".  entries is 120.
  obs::Snapshot budget;
  budget.gauges["runtime.domain_table.entries"] = 120;
  write_file(baseline + "/BUDGET_" + kBench + ".json",
             obs::snapshot_to_json(budget));
  const auto at_ceiling = run({"gate", baseline, fresh, kBench, "--budget"});
  EXPECT_EQ(at_ceiling.code, obs::kObsctlOk);
  EXPECT_NE(at_ceiling.out.find("1 byte budgets honored"), std::string::npos);

  budget.gauges["runtime.domain_table.entries"] = 119;
  write_file(baseline + "/BUDGET_" + kBench + ".json",
             obs::snapshot_to_json(budget));
  const auto over = run({"gate", baseline, fresh, kBench, "--budget"});
  EXPECT_EQ(over.code, obs::kObsctlDiffers);
  EXPECT_NE(over.err.find("exceeds budget 119"), std::string::npos);
}

TEST(ObsctlGate, BudgetChecksPeakRssFromBenchLine) {
  const std::string baseline = scratch_dir("gate_rss_baseline");
  const std::string fresh = scratch_dir("gate_rss_fresh");
  seed_gate_dirs(baseline, fresh, sample_snapshot(), 10.0, 10.0);
  obs::Snapshot budget;
  budget.gauges["bench.peak_rss_kb"] = 500000;
  write_file(baseline + "/BUDGET_" + kBench + ".json",
             obs::snapshot_to_json(budget));
  // The seeded fresh BENCH line has no peak_rss_kb field: error, not pass.
  const auto no_field = run({"gate", baseline, fresh, kBench, "--budget"});
  EXPECT_EQ(no_field.code, obs::kObsctlError);
  EXPECT_NE(no_field.err.find("peak_rss_kb"), std::string::npos);

  write_file(fresh + "/BENCH_" + kBench + ".json",
             "{\"bench\":\"unit_bench\",\"wall_ms\":10.000,\"threads\":1,"
             "\"peak_rss_kb\":400000}");
  EXPECT_EQ(run({"gate", baseline, fresh, kBench, "--budget"}).code,
            obs::kObsctlOk);

  write_file(fresh + "/BENCH_" + kBench + ".json",
             "{\"bench\":\"unit_bench\",\"wall_ms\":10.000,\"threads\":1,"
             "\"peak_rss_kb\":600000}");
  EXPECT_EQ(run({"gate", baseline, fresh, kBench, "--budget"}).code,
            obs::kObsctlDiffers);
}

TEST(ObsctlGate, BudgetMissingFileOrUnknownGaugeExitsTwo) {
  const std::string baseline = scratch_dir("gate_nobudget_baseline");
  const std::string fresh = scratch_dir("gate_nobudget_fresh");
  seed_gate_dirs(baseline, fresh, sample_snapshot(), 10.0, 10.0);
  // --budget without a committed BUDGET_<name>.json is a setup error.
  const auto missing = run({"gate", baseline, fresh, kBench, "--budget"});
  EXPECT_EQ(missing.code, obs::kObsctlError);
  EXPECT_NE(missing.err.find("missing budget"), std::string::npos);
  // Without the flag the same directories still gate clean.
  EXPECT_EQ(run({"gate", baseline, fresh, kBench}).code, obs::kObsctlOk);

  obs::Snapshot budget;
  budget.gauges["no.such.gauge"] = 1;
  write_file(baseline + "/BUDGET_" + kBench + ".json",
             obs::snapshot_to_json(budget));
  const auto unknown = run({"gate", baseline, fresh, kBench, "--budget"});
  EXPECT_EQ(unknown.code, obs::kObsctlError);
  EXPECT_NE(unknown.err.find("unknown gauge no.such.gauge"),
            std::string::npos);
}

// --- explain / prov-diff: the provenance plane -----------------------------

obs::ProvenanceRecord prov_record(std::string domain, std::int64_t domain_id,
                                  obs::ProvDetector detector, std::string rule,
                                  std::string brand, double score,
                                  bool flagged) {
  obs::ProvenanceRecord record;
  record.domain = std::move(domain);
  record.domain_id = domain_id;
  record.detector = detector;
  record.rule = std::move(rule);
  record.brand = std::move(brand);
  record.score_micros = obs::to_micros(score);
  record.suffix = ".com";
  record.flagged = flagged;
  return record;
}

// A two-subject ledger: one flagged homograph with a gate verdict riding
// on the same subject, one clean availability probe.
std::string sample_prov(const std::string& dir, const std::string& file) {
  std::vector<obs::ProvenanceRecord> records = {
      prov_record("xn--pple-43d.com", 42, obs::ProvDetector::kHomograph,
                  "ssim_scan", "apple.com", 0.9876, true),
      prov_record("xn--pple-43d.com", 42, obs::ProvDetector::kBrandProtection,
                  "audit_reject_visual", "apple.com", 0.9876, true),
      prov_record("xn--gogle-0nd.com", 7, obs::ProvDetector::kAvailability,
                  "below_threshold", "google.com", 0.41, false),
  };
  std::sort(records.begin(), records.end(), obs::provenance_record_less);
  const std::string path = dir + "/" + file;
  std::string text = obs::provenance_to_jsonl("unit", records, 0, {});
  text.pop_back();  // write_file adds the trailing newline back
  write_file(path, text);
  return path;
}

TEST(ObsctlExplain, JoinsOneSubjectIntoAnEvidenceChain) {
  const std::string dir = scratch_dir("explain_one");
  const std::string path = sample_prov(dir, "PROV_unit.jsonl");
  const auto result = run({"explain", path, "xn--pple-43d.com"});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_NE(result.out.find("xn--pple-43d.com (id 42): 2 records"),
            std::string::npos);
  EXPECT_NE(result.out.find(
                "homograph/ssim_scan brand=apple.com score=0.987600"),
            std::string::npos);
  EXPECT_NE(result.out.find("brand_protection/audit_reject_visual"),
            std::string::npos);
  EXPECT_EQ(result.err, "");

  // The numeric form addresses the same subject by DomainId.
  const auto by_id = run({"explain", path, "42"});
  EXPECT_EQ(by_id.code, obs::kObsctlOk);
  EXPECT_EQ(by_id.out, result.out);
}

TEST(ObsctlExplain, UnknownSubjectExitsTwo) {
  const std::string dir = scratch_dir("explain_unknown");
  const std::string path = sample_prov(dir, "PROV_unit.jsonl");
  const auto result = run({"explain", path, "innocent.com"});
  EXPECT_EQ(result.code, obs::kObsctlError);
  EXPECT_NE(result.err.find("no provenance records for 'innocent.com'"),
            std::string::npos);
  // Malformed ledgers and usage errors share the exit code.
  write_file(dir + "/garbage.jsonl", "not a ledger");
  EXPECT_EQ(run({"explain", dir + "/garbage.jsonl", "a.com"}).code,
            obs::kObsctlError);
  EXPECT_EQ(run({"explain", path}).code, obs::kObsctlError);
}

TEST(ObsctlExplain, OverflowingSubjectCannotAliasDomainId) {
  // strtoull wraps "4294967296" (2^32) to 0 and saturates past-u64 digit
  // strings to ULLONG_MAX with errno — either way the old lenient parse
  // could alias an impossible subject onto a real DomainId.  The strict
  // bounded parse treats both as (unknown) domain strings instead.
  const std::string dir = scratch_dir("explain_overflow");
  std::vector<obs::ProvenanceRecord> records = {
      prov_record("xn--aliased-0.com", 0, obs::ProvDetector::kHomograph,
                  "ssim_scan", "apple.com", 0.99, true),
  };
  const std::string path = dir + "/PROV_unit.jsonl";
  std::string text = obs::provenance_to_jsonl("unit", records, 0, {});
  text.pop_back();
  write_file(path, text);
  EXPECT_EQ(run({"explain", path, "0"}).code, obs::kObsctlOk);
  for (const char* bad : {"4294967296", "18446744073709551616"}) {
    const auto result = run({"explain", path, bad});
    EXPECT_EQ(result.code, obs::kObsctlError) << bad;
    EXPECT_NE(result.err.find("no provenance records"), std::string::npos)
        << bad;
  }
}

TEST(ObsctlExplain, AllRoundTripsEverySubject) {
  const std::string dir = scratch_dir("explain_all");
  const std::string path = sample_prov(dir, "PROV_unit.jsonl");
  const auto result = run({"explain", path, "--all"});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_NE(result.out.find("explained 2 subjects, 3 records"),
            std::string::npos);
  EXPECT_NE(result.out.find("xn--gogle-0nd.com (id 7): 1 record"),
            std::string::npos);
}

TEST(ObsctlProvDiff, IdenticalLedgersExitZero) {
  const std::string dir = scratch_dir("provdiff_equal");
  const std::string a = sample_prov(dir, "a.jsonl");
  const std::string b = sample_prov(dir, "b.jsonl");
  const auto result = run({"prov-diff", a, b});
  EXPECT_EQ(result.code, obs::kObsctlOk);
  EXPECT_NE(result.out.find("provenance identical"), std::string::npos);
}

TEST(ObsctlProvDiff, ReportsVerdictLevelChanges) {
  const std::string dir = scratch_dir("provdiff_changed");
  const std::string a = sample_prov(dir, "a.jsonl");
  // The delta run: the availability verdict flipped and a new subject
  // appeared; the unchanged homograph/gate verdicts must not be reported.
  std::vector<obs::ProvenanceRecord> records = {
      prov_record("xn--pple-43d.com", 42, obs::ProvDetector::kHomograph,
                  "ssim_scan", "apple.com", 0.9876, true),
      prov_record("xn--pple-43d.com", 42, obs::ProvDetector::kBrandProtection,
                  "audit_reject_visual", "apple.com", 0.9876, true),
      prov_record("xn--gogle-0nd.com", 7, obs::ProvDetector::kAvailability,
                  "ssim_sweep_registered", "google.com", 0.97, true),
      prov_record("xn--58-hm4e.com", 9, obs::ProvDetector::kSemanticT1,
                  "ascii_strip_brand_match", "58.com", 1.0, true),
  };
  std::sort(records.begin(), records.end(), obs::provenance_record_less);
  std::string text = obs::provenance_to_jsonl("unit", records, 0, {});
  text.pop_back();
  write_file(dir + "/b.jsonl", text);

  const auto result = run({"prov-diff", a, dir + "/b.jsonl"});
  EXPECT_EQ(result.code, obs::kObsctlDiffers);
  EXPECT_NE(result.out.find("- xn--gogle-0nd.com availability: "
                            "below_threshold brand=google.com"),
            std::string::npos);
  EXPECT_NE(result.out.find("+ xn--gogle-0nd.com availability: "
                            "ssim_sweep_registered brand=google.com"),
            std::string::npos);
  EXPECT_NE(result.out.find("+ xn--58-hm4e.com semantic_t1:"),
            std::string::npos);
  EXPECT_EQ(result.out.find("xn--pple-43d.com"), std::string::npos);
  EXPECT_NE(result.out.find("3 verdict differences"), std::string::npos);

  // Parse failures exit 2, distinct from "differs".
  write_file(dir + "/garbage.jsonl", "nope");
  EXPECT_EQ(run({"prov-diff", a, dir + "/garbage.jsonl"}).code,
            obs::kObsctlError);
}

// --- argument handling -----------------------------------------------------

TEST(Obsctl, UnknownVerbAndEmptyArgsExitTwo) {
  EXPECT_EQ(run({}).code, obs::kObsctlError);
  const auto result = run({"frobnicate"});
  EXPECT_EQ(result.code, obs::kObsctlError);
  EXPECT_NE(result.err.find("unknown verb"), std::string::npos);
  EXPECT_EQ(run({"gate", "a", "b"}).code, obs::kObsctlError);  // usage
}

}  // namespace
}  // namespace idnscope
