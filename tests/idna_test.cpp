// IDNA ToASCII / ToUnicode and DomainName tests.
#include <gtest/gtest.h>

#include "idnscope/common/rng.h"
#include "idnscope/idna/domain.h"
#include "idnscope/idna/idna.h"
#include "idnscope/idna/punycode.h"
#include "idnscope/unicode/utf8.h"

namespace idnscope::idna {
namespace {

TEST(IdnaLabel, AsciiPassThroughLowercased) {
  auto out = label_to_ascii(U"Example");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "example");
}

TEST(IdnaLabel, UnicodeGetsAcePrefix) {
  auto out = label_to_ascii(U"中国");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "xn--fiqs8s");
}

TEST(IdnaLabel, UppercaseUnicodeFolds) {
  // Cyrillic УРА -> ура before encoding.
  std::u32string upper = {0x0423, 0x0420, 0x0410};
  std::u32string lower = {0x0443, 0x0440, 0x0430};
  auto a = label_to_ascii(upper);
  auto b = label_to_ascii(lower);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

struct RejectCase {
  const char* name;
  std::u32string label;
  std::string_view code;
};

class IdnaRejectTest : public ::testing::TestWithParam<RejectCase> {};

TEST_P(IdnaRejectTest, Rejects) {
  auto out = label_to_ascii(GetParam().label);
  ASSERT_FALSE(out.ok()) << GetParam().name;
  EXPECT_EQ(out.error().code, GetParam().code) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IdnaRejectTest,
    ::testing::Values(
        RejectCase{"empty", U"", "idna.empty_label"},
        RejectCase{"leading hyphen", U"-abc", "idna.hyphen"},
        RejectCase{"trailing hyphen", U"abc-", "idna.hyphen"},
        RejectCase{"space", U"a b", "idna.disallowed"},
        RejectCase{"underscore", U"a_b", "idna.disallowed"},
        RejectCase{"slash", U"a/b", "idna.disallowed"},
        RejectCase{"emoji", std::u32string{U'a', 0x1F600}, "idna.disallowed"},
        RejectCase{"hyphen34", U"ab--cd", "idna.hyphen34"},
        RejectCase{"fake ace", U"xn--zzzzz!",
                   "idna.disallowed"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(IdnaLabel, RejectsBogusAcePrefixLabel) {
  // ASCII label that claims to be ACE but does not decode.
  auto out = label_to_ascii(U"xn---");
  EXPECT_FALSE(out.ok());
}

TEST(IdnaLabel, Rejects64OctetLabel) {
  std::u32string label(64, U'a');
  auto out = label_to_ascii(label);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, "idna.too_long");
}

TEST(IdnaLabel, Accepts63OctetLabel) {
  std::u32string label(63, U'a');
  EXPECT_TRUE(label_to_ascii(label).ok());
}

TEST(IdnaLabel, ToUnicodeRoundTrip) {
  auto ace = label_to_ascii(U"bücher");
  ASSERT_TRUE(ace.ok());
  auto back = label_to_unicode(ace.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), U"bücher");
}

TEST(IdnaLabel, ToUnicodePlainAscii) {
  auto out = label_to_unicode("Example");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), U"example");
}

TEST(IdnaLabel, ToUnicodeRejectsNonCanonicalAce) {
  // Decodes but re-encodes differently (uppercase punycode digits are
  // canonicalized): must fail the round-trip check if content disallowed.
  auto out = label_to_unicode("xn--a b");
  EXPECT_FALSE(out.ok());
}

TEST(IdnaDomain, ToAsciiFullDomain) {
  auto out = domain_to_ascii("中文域名.com");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "xn--fiq06l2rdsvs.com");
}

TEST(IdnaDomain, IdeographicDotVariants) {
  // U+3002 / U+FF0E / U+FF61 are label separators.
  auto a = domain_to_ascii("中国。com");
  auto b = domain_to_ascii("中国．com");
  auto c = domain_to_ascii("中国.com");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value(), c.value());
  EXPECT_EQ(b.value(), c.value());
}

TEST(IdnaDomain, TrailingRootDotAccepted) {
  auto out = domain_to_ascii("example.com.");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "example.com");
}

TEST(IdnaDomain, EmptyLabelRejected) {
  EXPECT_FALSE(domain_to_ascii("a..com").ok());
  EXPECT_FALSE(domain_to_ascii(".com").ok());
  EXPECT_FALSE(domain_to_ascii("").ok());
}

TEST(IdnaDomain, TotalLengthLimit) {
  std::string long_domain;
  for (int i = 0; i < 5; ++i) {
    long_domain += std::string(60, 'a') + ".";
  }
  long_domain += "com";
  auto out = domain_to_ascii(long_domain);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, "idna.too_long");
}

TEST(IdnaDomain, ToUnicode) {
  auto out = domain_to_unicode("xn--fiqs8s.com");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "中国.com");
}

TEST(IdnaLabel, FullwidthAsciiFolds) {
  // IDNA width mapping: ｅｘａｍｐｌｅ -> example.
  std::u32string fullwidth;
  for (char c : std::string("example")) {
    fullwidth.push_back(0xFEE0 + static_cast<char32_t>(c));
  }
  auto out = label_to_ascii(fullwidth);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "example");
}

TEST(IdnaLabel, FullwidthDigitsAndHyphen) {
  // ５８ -> 58, fullwidth hyphen-minus folds to '-'.
  std::u32string label = {0xFF15, 0xFF18, 0xFF0D, U'x'};
  auto out = label_to_ascii(label);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "58-x");
}

TEST(IdnaDomain, RejectsMalformedUtf8) {
  auto out = domain_to_ascii("\xC3.com");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, "utf8.malformed");
}

TEST(DomainName, ParseBasics) {
  auto domain = DomainName::parse("WWW.Example.COM");
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(domain.value().ascii(), "www.example.com");
  EXPECT_EQ(domain.value().level_count(), 3U);
  EXPECT_EQ(domain.value().tld(), "com");
  EXPECT_EQ(domain.value().sld_label(), "example");
  EXPECT_EQ(domain.value().registered_domain(), "example.com");
  EXPECT_FALSE(domain.value().is_idn());
  EXPECT_FALSE(domain.value().has_idn_tld());
}

TEST(DomainName, ParseIdn) {
  auto domain = DomainName::parse("中文.中国");
  ASSERT_TRUE(domain.ok());
  EXPECT_TRUE(domain.value().is_idn());
  EXPECT_TRUE(domain.value().has_idn_tld());
  EXPECT_EQ(domain.value().unicode(), "中文.中国");
}

TEST(DomainName, SldOfBareTld) {
  auto domain = DomainName::parse("com");
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(domain.value().sld_label(), "");
  EXPECT_EQ(domain.value().registered_domain(), "com");
}

TEST(DomainName, Ordering) {
  auto a = DomainName::parse("a.com").value();
  auto b = DomainName::parse("b.com").value();
  EXPECT_LT(a, b);
  EXPECT_EQ(a, DomainName::parse("A.COM").value());
}

// Property: ToASCII . ToUnicode . ToASCII is idempotent over the ecosystem
// vocabulary repertoire.
TEST(IdnaProperty, RoundTripStability) {
  Rng rng(99);
  constexpr char32_t kPool[] = {U'a', U'k', U'z', U'3', 0x00E9, 0x00FC,
                                0x4E2D, 0x56FD, 0x0431, 0xAC00, 0x0E01,
                                0x3042, 0x30A2};
  for (int i = 0; i < 400; ++i) {
    std::u32string label;
    const std::size_t length = 1 + rng.uniform(0, 12);
    for (std::size_t k = 0; k < length; ++k) {
      label.push_back(kPool[rng.uniform(0, std::size(kPool) - 1)]);
    }
    auto ace = label_to_ascii(label);
    ASSERT_TRUE(ace.ok());
    auto unicode_form = label_to_unicode(ace.value());
    ASSERT_TRUE(unicode_form.ok()) << ace.value();
    auto ace2 = label_to_ascii(unicode_form.value());
    ASSERT_TRUE(ace2.ok());
    EXPECT_EQ(ace.value(), ace2.value());
  }
}

}  // namespace
}  // namespace idnscope::idna
