// SSIM / MSE metric tests: reference properties, homoglyph-class ordering
// (the calibration the detector depends on), and SsimReference exactness.
#include <gtest/gtest.h>

#include <cmath>

#include "idnscope/idna/lookalike.h"
#include "idnscope/render/renderer.h"
#include "idnscope/render/ssim.h"

namespace idnscope::render {
namespace {

std::u32string ascii_u32(std::string_view text) {
  std::u32string out;
  for (unsigned char c : text) {
    out.push_back(c);
  }
  return out;
}

TEST(Ssim, IdenticalImagesScoreOne) {
  const GrayImage image = render_ascii("google.com");
  EXPECT_DOUBLE_EQ(ssim(image, image), 1.0);
}

TEST(Ssim, Symmetric) {
  const GrayImage a = render_ascii("google.com");
  std::u32string other = ascii_u32("google.com");
  other[2] = 0x00F6;
  const GrayImage b = render_label(other);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
}

TEST(Ssim, BoundedAboveByOne) {
  const GrayImage a = render_ascii("abc.com");
  const GrayImage b = render_ascii("xyz.net");
  const double score = ssim(a, b);
  EXPECT_LE(score, 1.0);
  EXPECT_GE(score, -1.0);
}

TEST(Ssim, BlankImagesAreIdentical) {
  const GrayImage a(32, 32);
  const GrayImage b(32, 32);
  EXPECT_DOUBLE_EQ(ssim(a, b), 1.0);
}

TEST(Ssim, UnmaskedVariantIsTheTextbookDefinition) {
  const GrayImage a = render_ascii("google.com");
  std::u32string other = ascii_u32("google.com");
  other[2] = 0x00F6;
  const GrayImage b = render_label(other);
  SsimOptions unmasked;
  unmasked.text_mask = false;
  // Background dilution: the unmasked score is higher.
  EXPECT_GT(ssim(a, b, unmasked), ssim(a, b));
}

TEST(Mse, ZeroForIdenticalMonotoneWithDamage) {
  const GrayImage a = render_ascii("google.com");
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  std::u32string one = ascii_u32("google.com");
  one[2] = 0x00F6;
  std::u32string two = one;
  two[3] = 0x00F6;
  EXPECT_LT(mse(a, render_label(one)), mse(a, render_label(two)));
}

TEST(Psnr, InfiniteForIdentical) {
  const GrayImage a = render_ascii("abc.com");
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  std::u32string other = ascii_u32("abc.com");
  other[0] = 0x00E4;
  EXPECT_LT(psnr(a, render_label(other)), 60.0);
}

// --- the calibration the paper's 0.95 threshold rests on -------------------

struct ClassCase {
  const char* name;
  char32_t cp;        // substituted into position 2 of google.com
  double min_ssim;
  double max_ssim;
};

class HomoglyphClassTest : public ::testing::TestWithParam<ClassCase> {};

TEST_P(HomoglyphClassTest, ScoresInBand) {
  std::u32string text = ascii_u32("google.com");
  text[2] = GetParam().cp;
  const double score = ssim(render_label(text), render_ascii("google.com"));
  EXPECT_GE(score, GetParam().min_ssim) << GetParam().name;
  EXPECT_LE(score, GetParam().max_ssim) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Calibration, HomoglyphClassTest,
    ::testing::Values(
        ClassCase{"identical_cyrillic_o", 0x043E, 1.0, 1.0},
        ClassCase{"identical_greek_omicron", 0x03BF, 1.0, 1.0},
        ClassCase{"near_o_diaeresis", 0x00F6, 0.95, 0.995},
        ClassCase{"near_o_macron", 0x014D, 0.95, 0.995},
        ClassCase{"near_o_dot_below", 0x1ECD, 0.95, 0.999},
        ClassCase{"similar_o_stroke", 0x00F8, 0.93, 0.985},
        ClassCase{"similar_o_horn", 0x01A1, 0.93, 0.985},
        // Body-alike letters (c/e/a for o) can pass 0.95 — consistent with
        // the paper, whose Table XII shows "gogglē" at 0.95.  Letters with
        // a different silhouette must fail the threshold.
        ClassCase{"different_letter_x", U'x', 0.70, 0.9499},
        ClassCase{"different_letter_v", U'v', 0.70, 0.9499},
        ClassCase{"tofu_han", 0x4E2D, 0.50, 0.9499}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SsimCalibration, OrderingAcrossClasses) {
  const GrayImage brand = render_ascii("google.com");
  auto score = [&](char32_t cp) {
    std::u32string text = ascii_u32("google.com");
    text[2] = cp;
    return ssim(render_label(text), brand);
  };
  const double identical = score(0x043E);
  const double near = score(0x00F6);
  const double different = score(U'x');
  EXPECT_GT(identical, near);
  EXPECT_GT(near, different);
}

TEST(SsimCalibration, ShorterDomainsPenalizeHarder) {
  auto one_sub = [&](std::string_view domain) {
    std::u32string text = ascii_u32(domain);
    text[0] = 0x00E9;  // é for e
    return ssim(render_label(text), render_ascii(domain));
  };
  EXPECT_LT(one_sub("ea.com"), one_sub("ebaylike-market.com"));
}

TEST(SsimCalibration, TwoSubstitutionsScoreBelowOne) {
  std::u32string text = ascii_u32("google.com");
  text[1] = 0x00F5;
  text[2] = 0x00F5;
  const double two = ssim(render_label(text), render_ascii("google.com"));
  std::u32string single = ascii_u32("google.com");
  single[1] = 0x00F5;
  const double one = ssim(render_label(single), render_ascii("google.com"));
  EXPECT_LT(two, one);
}

// --- SsimReference: the region-restricted fast path -------------------------

TEST(SsimReference, ExactlyMatchesFullEvaluation) {
  const RenderOptions render_options;
  const std::string brand = "facebook.com";
  const SsimReference reference(render_ascii(brand, render_options));
  int checked = 0;
  for (const auto& candidate : idna::single_substitution_candidates(brand)) {
    std::u32string display = candidate.unicode_sld;
    for (unsigned char c : std::string_view(".com")) {
      display.push_back(c);
    }
    const GrayImage image = render_label(display, render_options);
    const int x0 = std::max(
        0, (kMargin + static_cast<int>(candidate.position) * kCellWidth) *
                   render_options.scale -
               render_options.scale - 2);
    const int x1 =
        (kMargin + (static_cast<int>(candidate.position) + 1) * kCellWidth) *
            render_options.scale +
        render_options.scale + 2;
    EXPECT_NEAR(reference.compare(image, x0, x1),
                ssim(image, reference.image()), 1e-9)
        << candidate.ace_domain;
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST(SsimReference, IdenticalCandidateScoresOne) {
  const GrayImage image = render_ascii("apple.com");
  const SsimReference reference(image);
  EXPECT_DOUBLE_EQ(reference.compare(image, 10, 20), 1.0);
  EXPECT_DOUBLE_EQ(reference.compare(image, 0, image.width()), 1.0);
}

TEST(SsimReference, EmptyRegionIsOne) {
  const GrayImage image = render_ascii("apple.com");
  const SsimReference reference(image);
  EXPECT_DOUBLE_EQ(reference.compare(image, 5, 5), 1.0);
}

// --- the prefilter bound used by the detector -------------------------------

TEST(Prefilter, ColumnProfileBoundIsSound) {
  // No candidate reaching SSIM >= 0.95 may exceed the L1 budget of 26
  // (HomographOptions::profile_budget); otherwise the prefilter would drop
  // true positives.
  const char* brands[] = {"google.com", "qq.com", "amazon.com", "58.com"};
  for (const char* brand : brands) {
    const GrayImage brand_image = render_ascii(brand);
    const auto brand_profile = column_profile(ascii_u32(brand));
    for (const auto& candidate : idna::single_substitution_candidates(brand)) {
      std::u32string display = candidate.unicode_sld;
      const std::string_view suffix =
          std::string_view(brand).substr(std::string_view(brand).find('.'));
      for (unsigned char c : suffix) {
        display.push_back(c);
      }
      const double score = ssim(render_label(display), brand_image);
      if (score < 0.95) {
        continue;
      }
      const auto profile = column_profile(display);
      int l1 = 0;
      for (std::size_t i = 0; i < profile.size(); ++i) {
        l1 += std::abs(profile[i] - brand_profile[i]);
      }
      EXPECT_LE(l1, 26) << candidate.ace_domain << " ssim=" << score;
    }
  }
}

}  // namespace
}  // namespace idnscope::render
