// Ecosystem generator tests: determinism, calibration, internal consistency.
#include <gtest/gtest.h>

#include "idnscope/ecosystem/ecosystem.h"
#include "idnscope/ecosystem/paper.h"
#include "idnscope/idna/punycode.h"

namespace idnscope::ecosystem {
namespace {

const Ecosystem& tiny_eco() {
  static const Ecosystem eco = generate(Scenario::tiny());
  return eco;
}

TEST(Generator, DeterministicForSameSeed) {
  Scenario scenario = Scenario::tiny();
  const Ecosystem a = generate(scenario);
  const Ecosystem b = generate(scenario);
  ASSERT_EQ(a.idns, b.idns);
  ASSERT_EQ(a.sampled_non_idns, b.sampled_non_idns);
  EXPECT_EQ(a.blacklist, b.blacklist);
  EXPECT_EQ(a.whois.size(), b.whois.size());
  for (const std::string& domain : a.idns) {
    const auto* wa = a.whois.lookup(domain);
    const auto* wb = b.whois.lookup(domain);
    ASSERT_EQ(wa == nullptr, wb == nullptr);
    if (wa != nullptr) {
      EXPECT_EQ(*wa, *wb);
    }
    const auto* pa = a.pdns.lookup(domain);
    const auto* pb = b.pdns.lookup(domain);
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(pa->query_count, pb->query_count);
    EXPECT_EQ(pa->first_seen, pb->first_seen);
  }
}

TEST(Generator, DifferentSeedsProduceDifferentWorlds) {
  Scenario a = Scenario::tiny();
  Scenario b = Scenario::tiny();
  b.seed = a.seed + 1;
  EXPECT_NE(generate(a).idns, generate(b).idns);
}

TEST(Generator, ZoneInventory) {
  const Ecosystem& eco = tiny_eco();
  ASSERT_EQ(eco.zones.size(), 56U);  // com, net, org + 53 iTLDs
  EXPECT_EQ(eco.zones[0].origin(), "com");
  EXPECT_EQ(eco.zones[1].origin(), "net");
  EXPECT_EQ(eco.zones[2].origin(), "org");
  for (std::size_t i = 3; i < eco.zones.size(); ++i) {
    EXPECT_TRUE(idna::has_ace_prefix(eco.zones[i].origin()));
  }
}

TEST(Generator, EveryIdnHasAcePrefixAndTruth) {
  const Ecosystem& eco = tiny_eco();
  for (const std::string& domain : eco.idns) {
    const std::size_t dot = domain.find('.');
    ASSERT_NE(dot, std::string::npos);
    const bool idn_sld = idna::has_ace_prefix(domain.substr(0, dot));
    const bool idn_tld =
        idna::has_ace_prefix(domain.substr(domain.rfind('.') + 1));
    EXPECT_TRUE(idn_sld || idn_tld) << domain;
    auto it = eco.truth.find(domain);
    ASSERT_NE(it, eco.truth.end()) << domain;
    EXPECT_TRUE(it->second.is_idn);
  }
}

TEST(Generator, NonIdnSampleIsAscii) {
  const Ecosystem& eco = tiny_eco();
  EXPECT_FALSE(eco.sampled_non_idns.empty());
  for (const std::string& domain : eco.sampled_non_idns) {
    EXPECT_FALSE(idna::has_ace_prefix(domain.substr(0, domain.find('.'))))
        << domain;
    const auto it = eco.truth.find(domain);
    ASSERT_NE(it, eco.truth.end());
    EXPECT_FALSE(it->second.is_idn);
  }
}

TEST(Generator, BlacklistConsistentWithTruth) {
  const Ecosystem& eco = tiny_eco();
  for (const auto& [domain, mask] : eco.blacklist) {
    EXPECT_NE(mask, 0U);
    auto it = eco.truth.find(domain);
    ASSERT_NE(it, eco.truth.end()) << domain;
    EXPECT_TRUE(it->second.malicious);
  }
  for (const auto& [domain, truth] : eco.truth) {
    if (truth.malicious) {
      EXPECT_TRUE(eco.is_blacklisted(domain)) << domain;
    }
  }
}

TEST(Generator, PdnsCoversAllRegisteredDomains) {
  const Ecosystem& eco = tiny_eco();
  for (const std::string& domain : eco.idns) {
    EXPECT_NE(eco.pdns.lookup(domain), nullptr) << domain;
  }
  for (const std::string& domain : eco.sampled_non_idns) {
    EXPECT_NE(eco.pdns.lookup(domain), nullptr) << domain;
  }
}

TEST(Generator, PdnsSpansAreOrdered) {
  const Ecosystem& eco = tiny_eco();
  for (const auto& [domain, aggregate] : eco.pdns.all()) {
    EXPECT_LE(aggregate.first_seen.to_serial(),
              aggregate.last_seen.to_serial())
        << domain;
    EXPECT_GE(aggregate.query_count, 1U) << domain;
  }
}

TEST(Generator, HomographPlantsRecordTargets) {
  const Ecosystem& eco = tiny_eco();
  std::size_t homographs = 0;
  std::size_t identical = 0;
  for (const auto& [domain, truth] : eco.truth) {
    if (truth.abuse == AbuseKind::kHomograph) {
      ++homographs;
      EXPECT_FALSE(truth.target_brand.empty()) << domain;
      if (truth.identical_lookalike) {
        ++identical;
      }
    }
  }
  EXPECT_GT(homographs, 0U);
  EXPECT_GT(identical, 0U);
  EXPECT_LT(identical, homographs);
}

TEST(Generator, SemanticPlantsTargetKnownBrands) {
  const Ecosystem& eco = tiny_eco();
  std::size_t semantic = 0;
  for (const auto& [domain, truth] : eco.truth) {
    if (truth.abuse == AbuseKind::kSemanticT1) {
      ++semantic;
      EXPECT_FALSE(truth.target_brand.empty()) << domain;
    }
  }
  EXPECT_GT(semantic, 0U);
}

TEST(Generator, ProtectiveRegistrationsUseBrandEmail) {
  const Ecosystem& eco = tiny_eco();
  std::size_t protective = 0;
  for (const auto& [domain, truth] : eco.truth) {
    if (!truth.protective) {
      continue;
    }
    ++protective;
    const whois::WhoisRecord* record = eco.whois.lookup(domain);
    ASSERT_NE(record, nullptr) << domain;
    EXPECT_TRUE(record->registrant_email.ends_with("@" + truth.target_brand))
        << domain;
    EXPECT_FALSE(truth.malicious);
  }
  EXPECT_GT(protective, 0U);
}

TEST(Generator, WhoisCoverageNearTableOne) {
  const Ecosystem& eco = tiny_eco();
  std::size_t covered = 0;
  for (const std::string& domain : eco.idns) {
    if (eco.whois.lookup(domain) != nullptr) {
      ++covered;
    }
  }
  const double rate =
      static_cast<double>(covered) / static_cast<double>(eco.idns.size());
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.70);  // paper: 50.19%
}

TEST(Generator, SegmentsIncludeThePaperTaxonomy) {
  const Ecosystem& eco = tiny_eco();
  int parking = 0;
  int hosting = 0;
  int cdn = 0;
  int private_segments = 0;
  for (const SegmentInfo& segment : eco.segments) {
    if (segment.kind == "parking") ++parking;
    if (segment.kind == "hosting") ++hosting;
    if (segment.kind == "cdn") ++cdn;
    if (segment.kind == "private") ++private_segments;
  }
  EXPECT_GE(parking, 4);
  EXPECT_GE(hosting, 4);
  EXPECT_EQ(cdn, 1);
  EXPECT_EQ(private_segments, 1);
}

TEST(Generator, FillerRespectsTableOneTotals) {
  Scenario scenario = Scenario::tiny();
  scenario.generate_filler = true;
  const Ecosystem eco = generate(scenario);
  const auto slds = dns::scan_slds(eco.zones[0]);
  const std::uint64_t expected =
      paper::kTable1[0].sld_count / scenario.bulk_scale;
  EXPECT_NEAR(static_cast<double>(slds.size()), static_cast<double>(expected),
              static_cast<double>(expected) * 0.02);
}

TEST(Generator, WebStageCanBeDisabled) {
  Scenario scenario = Scenario::tiny();
  scenario.generate_web = false;
  const Ecosystem eco = generate(scenario);
  EXPECT_EQ(eco.web.site_count(), 0U);
  EXPECT_EQ(eco.resolver.installed_count(), 0U);
  // Everything else still runs.
  EXPECT_FALSE(eco.idns.empty());
  EXPECT_GT(eco.pdns.domain_count(), 0U);
}

TEST(Generator, SslStageCanBeDisabled) {
  Scenario scenario = Scenario::tiny();
  scenario.generate_ssl = false;
  const Ecosystem eco = generate(scenario);
  EXPECT_EQ(eco.idn_certs.size(), 0U);
  EXPECT_EQ(eco.non_idn_certs.size(), 0U);
  EXPECT_FALSE(eco.idns.empty());
}

TEST(Generator, StageFlagsDoNotChangeThePopulation) {
  Scenario with = Scenario::tiny();
  Scenario without = Scenario::tiny();
  without.generate_web = false;
  without.generate_ssl = false;
  EXPECT_EQ(generate(with).idns, generate(without).idns);
}

TEST(Generator, Type2PlantsExist) {
  const Ecosystem& eco = tiny_eco();
  std::size_t type2 = 0;
  for (const auto& [domain, truth] : eco.truth) {
    if (truth.abuse == AbuseKind::kSemanticT2) {
      ++type2;
      EXPECT_FALSE(truth.target_brand.empty()) << domain;
    }
  }
  EXPECT_GE(type2, 20U);
}

TEST(Generator, WhoisRecordsSurviveTheTextRoundTrip) {
  // WHOIS records are materialized through format+parse of a registrar
  // dialect; spot-check structural integrity.
  const Ecosystem& eco = tiny_eco();
  std::size_t checked = 0;
  for (const std::string& domain : eco.idns) {
    const whois::WhoisRecord* record = eco.whois.lookup(domain);
    if (record == nullptr) {
      continue;
    }
    EXPECT_EQ(record->domain, domain);
    EXPECT_TRUE(record->creation_date.valid());
    EXPECT_TRUE(record->expiry_date.valid());
    EXPECT_FALSE(record->registrar.empty());
    if (++checked == 200) {
      break;
    }
  }
  EXPECT_EQ(checked, 200U);
}

TEST(Generator, TheHeaviestMaliciousGamblingSiteExists) {
  // Finding 6's outlier: 3,858,932 look-ups over 118 active days.
  const Ecosystem& eco = tiny_eco();
  bool found = false;
  for (const auto& [domain, aggregate] : eco.pdns.all()) {
    if (aggregate.query_count == 3'858'932U) {
      EXPECT_EQ(aggregate.active_days(), 118);
      EXPECT_TRUE(eco.is_blacklisted(domain));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace idnscope::ecosystem
