// Homograph detector tests: recall on plants, precision, prefilter parity.
#include <gtest/gtest.h>

#include <set>

#include "idnscope/core/homograph.h"
#include "idnscope/idna/lookalike.h"

namespace idnscope::core {
namespace {

const ecosystem::Ecosystem& tiny_eco() {
  static const ecosystem::Ecosystem eco =
      ecosystem::generate(ecosystem::Scenario::tiny());
  return eco;
}

const Study& tiny_study() {
  static const Study study(tiny_eco());
  return study;
}

const HomographDetector& detector() {
  static const HomographDetector instance(ecosystem::alexa_top1k());
  return instance;
}

TEST(Homograph, DetectsIdenticalLookalike) {
  const std::pair<std::size_t, char32_t> sub{0, 0x0430};  // Cyrillic а
  const auto domain = idna::substitute("apple.com", {&sub, 1});
  ASSERT_TRUE(domain.has_value());
  const auto match = detector().best_match(*domain);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->brand, "apple.com");
  EXPECT_TRUE(match->identical);
  EXPECT_DOUBLE_EQ(match->ssim, 1.0);
}

TEST(Homograph, DetectsAccentLookalike) {
  const std::pair<std::size_t, char32_t> sub{1, 0x00E0};  // à
  const auto domain = idna::substitute("facebook.com", {&sub, 1});
  ASSERT_TRUE(domain.has_value());
  const auto match = detector().best_match(*domain);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->brand, "facebook.com");
  EXPECT_FALSE(match->identical);
  EXPECT_GE(match->ssim, 0.95);
}

TEST(Homograph, BrandItselfIsNotAHomographOfItself) {
  EXPECT_FALSE(detector().best_match("google.com").has_value());
}

TEST(Homograph, RejectsUnrelatedIdn) {
  // A Chinese IDN shares no visual structure with any brand.
  EXPECT_FALSE(detector().best_match("xn--fiq06l2rdsvs.com").has_value());
}

TEST(Homograph, RejectsLengthMismatch) {
  const std::pair<std::size_t, char32_t> sub{0, 0x00E9};
  const auto domain = idna::substitute("e-commerce-hub-portal.com", {&sub, 1});
  ASSERT_TRUE(domain.has_value());
  EXPECT_FALSE(detector().best_match(*domain).has_value());
}

TEST(Homograph, FindsAllPlantedIdenticalHomographs) {
  // Every identical-class plant must be recalled (SSIM is exactly 1.0).
  const auto matches = detector().scan(tiny_study().table(), tiny_study().idns());
  std::set<std::string> matched;
  for (const HomographMatch& match : matches) {
    matched.insert(match.domain);
  }
  for (const auto& [domain, truth] : tiny_eco().truth) {
    if (truth.abuse == ecosystem::AbuseKind::kHomograph &&
        truth.identical_lookalike) {
      EXPECT_TRUE(matched.contains(domain)) << domain;
    }
  }
}

TEST(Homograph, HighRecallOnAllPlants) {
  const auto matches = detector().scan(tiny_study().table(), tiny_study().idns());
  std::set<std::string> matched;
  for (const HomographMatch& match : matches) {
    matched.insert(match.domain);
  }
  std::size_t planted = 0;
  std::size_t recalled = 0;
  for (const auto& [domain, truth] : tiny_eco().truth) {
    if (truth.abuse == ecosystem::AbuseKind::kHomograph) {
      ++planted;
      if (matched.contains(domain)) {
        ++recalled;
      }
    }
  }
  ASSERT_GT(planted, 0U);
  EXPECT_GE(static_cast<double>(recalled) / static_cast<double>(planted),
            0.95);
}

TEST(Homograph, MatchedBrandAgreesWithPlantTarget) {
  const auto matches = detector().scan(tiny_study().table(), tiny_study().idns());
  for (const HomographMatch& match : matches) {
    auto it = tiny_eco().truth.find(match.domain);
    ASSERT_NE(it, tiny_eco().truth.end());
    if (it->second.abuse == ecosystem::AbuseKind::kHomograph) {
      EXPECT_EQ(match.brand, it->second.target_brand) << match.domain;
    }
  }
}

TEST(Homograph, PrefilterMatchesExhaustiveScan) {
  // Soundness of the column-profile prefilter: identical result set with
  // and without it on a slice of the population.
  std::vector<std::string> slice;
  for (std::size_t i = 0; i < tiny_study().idns().size() && slice.size() < 400;
       i += 3) {
    slice.emplace_back(tiny_study().domain(tiny_study().idns()[i]));
  }
  HomographOptions exhaustive;
  exhaustive.use_prefilter = false;
  const HomographDetector slow(ecosystem::alexa_top(200), exhaustive);
  const HomographDetector fast(ecosystem::alexa_top(200));
  const auto slow_matches = slow.scan(slice);
  const auto fast_matches = fast.scan(slice);
  ASSERT_EQ(slow_matches.size(), fast_matches.size());
  for (std::size_t i = 0; i < slow_matches.size(); ++i) {
    EXPECT_EQ(slow_matches[i].domain, fast_matches[i].domain);
    EXPECT_EQ(slow_matches[i].brand, fast_matches[i].brand);
    EXPECT_NEAR(slow_matches[i].ssim, fast_matches[i].ssim, 1e-12);
  }
  EXPECT_GT(fast.prefilter_skips(), 0U);
}

TEST(Homograph, SkeletonFastPathMatchesFullScanExactly) {
  // The identical-twin fast path may only change *effort*, never output:
  // match-for-match equality (brand, bitwise SSIM, identical flag) against
  // the index-off detector over the whole population.
  HomographOptions off;
  off.use_skeleton_index = false;
  const HomographDetector plain(ecosystem::alexa_top(200), off);
  const HomographDetector fast(ecosystem::alexa_top(200));
  const auto slow_matches =
      plain.scan(tiny_study().table(), tiny_study().idns());
  const auto fast_matches =
      fast.scan(tiny_study().table(), tiny_study().idns());
  ASSERT_EQ(slow_matches.size(), fast_matches.size());
  for (std::size_t i = 0; i < slow_matches.size(); ++i) {
    EXPECT_EQ(slow_matches[i].domain, fast_matches[i].domain);
    EXPECT_EQ(slow_matches[i].brand, fast_matches[i].brand);
    EXPECT_EQ(slow_matches[i].ssim, fast_matches[i].ssim)
        << slow_matches[i].domain;
    EXPECT_EQ(slow_matches[i].identical, fast_matches[i].identical);
  }
  EXPECT_GT(fast.skeleton_hits(), 0U);
}

TEST(Homograph, DistinctAsciiGlyphsRenderDistinctCells) {
  // The fast path's argmax argument: a byte-identical render of brand B is
  // the unique SSIM maximum only if no two ASCII characters share a glyph.
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-";
  std::vector<render::GrayImage> cells;
  for (char c : alphabet) {
    cells.push_back(render::render_code_point(static_cast<char32_t>(c)));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i].pixels(), cells[j].pixels())
          << alphabet[i] << " vs " << alphabet[j];
    }
  }
}

TEST(Homograph, ThresholdIsRespected) {
  HomographOptions strict;
  strict.threshold = 0.999;
  const HomographDetector high_bar(ecosystem::alexa_top1k(), strict);
  for (const HomographMatch& match :
       high_bar.scan(tiny_study().table(), tiny_study().idns())) {
    EXPECT_GE(match.ssim, 0.999);
    EXPECT_TRUE(match.identical);
  }
}

TEST(Homograph, ReportAggregates) {
  const auto report = analyze_homographs(tiny_study(), detector(), 10);
  EXPECT_FALSE(report.matches.empty());
  EXPECT_GT(report.brands_targeted, 0U);
  EXPECT_LE(report.top_brands.size(), 10U);
  EXPECT_LE(report.identical_count, report.matches.size());
  EXPECT_LE(report.whois_covered, report.matches.size());
  // Top brands sorted descending.
  for (std::size_t i = 1; i < report.top_brands.size(); ++i) {
    EXPECT_GE(report.top_brands[i - 1].idn_count,
              report.top_brands[i].idn_count);
  }
  std::uint64_t top_sum = 0;
  for (const auto& row : report.top_brands) {
    top_sum += row.idn_count;
  }
  EXPECT_LE(top_sum, report.matches.size());
}

}  // namespace
}  // namespace idnscope::core
