// Zone model, master-file parser/serializer, and zone-scanning tests.
#include <gtest/gtest.h>

#include "idnscope/dns/zone.h"

namespace idnscope::dns {
namespace {

Zone sample_zone() {
  Zone zone("com");
  zone.add({"example.com", 172800, RrType::kNs, "ns1.example-dns.net"});
  zone.add({"example.com", 172800, RrType::kNs, "ns2.example-dns.net"});
  zone.add({"xn--fiq06l2rdsvs.com", 172800, RrType::kNs, "ns1.hichina.com"});
  zone.add({"www.deep.example.com", 3600, RrType::kA, "192.0.2.10"});
  zone.add({"other.com", 3600, RrType::kCname, "example.com"});
  return zone;
}

TEST(Zone, OwnersAreLowercased) {
  Zone zone("com");
  zone.add({"EXAMPLE.COM", 1, RrType::kNs, "ns1.x.net"});
  EXPECT_EQ(zone.records()[0].owner, "example.com");
}

TEST(Zone, ForEachSldDeduplicatesAndReducesDepth) {
  const Zone zone = sample_zone();
  std::vector<std::string> slds;
  zone.for_each_sld([&](std::string_view sld) { slds.emplace_back(sld); });
  ASSERT_EQ(slds.size(), 3U);
  EXPECT_EQ(slds[0], "example.com");
  EXPECT_EQ(slds[1], "xn--fiq06l2rdsvs.com");
  EXPECT_EQ(slds[2], "other.com");
}

TEST(Zone, ScanIdnsFindsAceSlds) {
  const auto idns = scan_idns(sample_zone());
  ASSERT_EQ(idns.size(), 1U);
  EXPECT_EQ(idns[0], "xn--fiq06l2rdsvs.com");
}

TEST(Zone, ScanIdnsUnderItldTakesEverything) {
  Zone zone("xn--fiqs8s");
  zone.add({"xn--55qx5d.xn--fiqs8s", 1, RrType::kNs, "ns1.cnnic.cn"});
  zone.add({"plain.xn--fiqs8s", 1, RrType::kNs, "ns1.cnnic.cn"});
  const auto idns = scan_idns(zone);
  EXPECT_EQ(idns.size(), 2U);
}

TEST(Zone, SerializeParseRoundTrip) {
  const Zone zone = sample_zone();
  const std::string text = serialize_zone(zone);
  auto parsed = parse_zone(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().origin(), "com");
  ASSERT_EQ(parsed.value().size(), zone.size());
  for (std::size_t i = 0; i < zone.size(); ++i) {
    EXPECT_EQ(parsed.value().records()[i], zone.records()[i]) << i;
  }
}

TEST(ZoneParse, DirectivesAndComments) {
  const char* text =
      "$ORIGIN com.   ; the com zone\n"
      "$TTL 3600\n"
      "; full-line comment\n"
      "example 7200 IN NS ns1.host.net.\n"
      "implicit-ttl IN NS ns2.host.net.\n"
      "\n";
  auto zone = parse_zone(text);
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  ASSERT_EQ(zone.value().size(), 2U);
  EXPECT_EQ(zone.value().records()[0].owner, "example.com");
  EXPECT_EQ(zone.value().records()[0].ttl, 7200U);
  EXPECT_EQ(zone.value().records()[0].rdata, "ns1.host.net.");
  EXPECT_EQ(zone.value().records()[1].owner, "implicit-ttl.com");
  EXPECT_EQ(zone.value().records()[1].ttl, 3600U);
}

TEST(ZoneParse, RelativeOwnerNotConfusedBySuffixSubstring) {
  // "telecom" ends with "com" but is not under the origin.
  const char* text =
      "$ORIGIN com.\n"
      "telecom IN NS ns1.host.net\n";
  auto zone = parse_zone(text);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone.value().records()[0].owner, "telecom.com");
}

TEST(ZoneParse, SoaPopulatesFields) {
  const char* text =
      "example.com. IN SOA ns1.dns.net. admin.dns.net. 2017092101 1800 900 "
      "604800 86400\n"
      "www.example.com. IN A 192.0.2.1\n";
  auto zone = parse_zone(text);
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  EXPECT_EQ(zone.value().origin(), "example.com");
  EXPECT_EQ(zone.value().soa().serial, 2017092101U);
  EXPECT_EQ(zone.value().soa().mname, "ns1.dns.net");
  EXPECT_EQ(zone.value().size(), 1U);
}

struct BadZone {
  const char* name;
  const char* text;
  std::string_view code;
};

class ZoneParseErrorTest : public ::testing::TestWithParam<BadZone> {};

TEST_P(ZoneParseErrorTest, Rejects) {
  auto zone = parse_zone(GetParam().text);
  ASSERT_FALSE(zone.ok()) << GetParam().name;
  EXPECT_EQ(zone.error().code, GetParam().code);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ZoneParseErrorTest,
    ::testing::Values(
        BadZone{"no_origin", "example IN NS ns1.h.net\n", "zone.no_origin"},
        BadZone{"bad_origin_arity", "$ORIGIN\n", "zone.bad_directive"},
        BadZone{"bad_ttl", "$TTL abc\n", "zone.bad_directive"},
        BadZone{"unknown_type",
                "$ORIGIN com.\nexample IN BOGUS data\n", "zone.bad_type"},
        BadZone{"missing_rdata", "$ORIGIN com.\nexample IN NS\n",
                "zone.bad_record"},
        BadZone{"short_line", "$ORIGIN com.\nexample NS\n",
                "zone.bad_record"},
        BadZone{"bad_soa",
                "$ORIGIN com.\ncom. IN SOA ns1.h.net. admin.h.net. 1 2 3\n",
                "zone.bad_soa"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ZoneParse, RrTypeNames) {
  for (RrType type : {RrType::kSoa, RrType::kNs, RrType::kA, RrType::kAaaa,
                      RrType::kCname, RrType::kMx, RrType::kTxt}) {
    auto name = rr_type_name(type);
    auto back = rr_type_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(rr_type_from_name("PTR").has_value());
}

}  // namespace
}  // namespace idnscope::dns
