// Golden-raster tests: lock the letterforms the SSIM calibration depends
// on.  A font change that passes these but shifts SSIM bands would still
// be caught by ssim_test.cpp; together they pin the detector's behaviour.
#include <gtest/gtest.h>

#include "idnscope/render/renderer.h"

namespace idnscope::render {
namespace {

std::string raw_art(char32_t cp) {
  return render_label(std::u32string(1, cp), RenderOptions{1, false})
      .to_ascii_art();
}

TEST(FontGolden, LowercaseO) {
  EXPECT_EQ(raw_art(U'o'),
            "..........\n"
            "..........\n"
            "..........\n"
            "..........\n"
            "..........\n"
            "..........\n"
            "..........\n"
            "..#####...\n"
            ".#.....#..\n"
            ".#.....#..\n"
            ".#.....#..\n"
            ".#.....#..\n"
            ".#.....#..\n"
            "..#####...\n"
            "..........\n"
            "..........\n"
            "..........\n"
            "..........\n");
}

TEST(FontGolden, ODiaeresisAddsExactlyTheDots) {
  // ö differs from o only by the two dots in the accent area.
  const std::string o = raw_art(U'o');
  const std::string o_umlaut = raw_art(0x00F6);
  ASSERT_EQ(o.size(), o_umlaut.size());
  int added = 0;
  int removed = 0;
  for (std::size_t i = 0; i < o.size(); ++i) {
    if (o[i] == o_umlaut[i]) {
      continue;
    }
    if (o_umlaut[i] == '#') {
      ++added;
    } else {
      ++removed;
    }
  }
  EXPECT_EQ(added, 2);
  EXPECT_EQ(removed, 0);
}

TEST(FontGolden, CyrillicAEqualsLatinA) {
  EXPECT_EQ(raw_art(0x0430), raw_art(U'a'));
}

TEST(FontGolden, DigitZeroIsSlashedAgainstO) {
  // The 0 glyph carries an interior slash so 0/o are not confusable.
  const std::string zero = raw_art(U'0');
  const std::string o = raw_art(U'o');
  EXPECT_NE(zero, o);
  int diff = 0;
  for (std::size_t i = 0; i < zero.size(); ++i) {
    diff += zero[i] != o[i];
  }
  EXPECT_GE(diff, 8);
}

TEST(FontGolden, InkBudgetsAreStable) {
  // Per-letter ink counts: a coarse fingerprint of the whole font.  If a
  // glyph is redesigned, re-run the SSIM calibration before updating.
  int total_ink = 0;
  for (char c = 'a'; c <= 'z'; ++c) {
    total_ink += base_glyph(c)->ink();
  }
  EXPECT_GE(total_ink, 26 * 12);
  EXPECT_LE(total_ink, 26 * 30);
}

}  // namespace
}  // namespace idnscope::render
