// Query-log layer tests: synthesize/ingest round-trip and text format.
#include <gtest/gtest.h>

#include "idnscope/common/rng.h"
#include "idnscope/dns/query_log.h"
#include "idnscope/ecosystem/ecosystem.h"

namespace idnscope::dns {
namespace {

DnsAggregate make_aggregate(Date first, Date last, std::uint64_t count) {
  DnsAggregate aggregate;
  aggregate.first_seen = first;
  aggregate.last_seen = last;
  aggregate.query_count = count;
  aggregate.resolved_ips.push_back(Ipv4(192, 0, 2, 7));
  return aggregate;
}

TEST(QueryLog, RoundTripPreservesAggregate) {
  const auto aggregate =
      make_aggregate(Date{2015, 3, 1}, Date{2017, 9, 21}, 12345);
  const auto log = synthesize_log("example.com", aggregate, 1);
  ASSERT_FALSE(log.empty());
  PassiveDnsDb db;
  ingest(db, log);
  const DnsAggregate* rebuilt = db.lookup("example.com");
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->query_count, aggregate.query_count);
  EXPECT_EQ(rebuilt->first_seen, aggregate.first_seen);
  EXPECT_EQ(rebuilt->last_seen, aggregate.last_seen);
  EXPECT_EQ(rebuilt->resolved_ips, aggregate.resolved_ips);
}

TEST(QueryLog, SingleDayAggregate) {
  const auto aggregate =
      make_aggregate(Date{2017, 1, 1}, Date{2017, 1, 1}, 500);
  const auto log = synthesize_log("a.com", aggregate, 2);
  ASSERT_EQ(log.size(), 1U);
  EXPECT_EQ(log[0].count, 500U);
}

TEST(QueryLog, SingleLookupCollapsesToFirstDay) {
  const auto aggregate = make_aggregate(Date{2016, 1, 1}, Date{2017, 1, 1}, 1);
  const auto log = synthesize_log("a.com", aggregate, 3);
  ASSERT_EQ(log.size(), 1U);
  EXPECT_EQ(log[0].day, (Date{2016, 1, 1}));
}

TEST(QueryLog, EntriesStayWithinSpanAndSorted) {
  const auto aggregate =
      make_aggregate(Date{2016, 6, 1}, Date{2016, 8, 30}, 10000);
  const auto log = synthesize_log("b.com", aggregate, 4);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_GE(log[i].day.to_serial(), aggregate.first_seen.to_serial());
    EXPECT_LE(log[i].day.to_serial(), aggregate.last_seen.to_serial());
    if (i > 0) {
      EXPECT_LE(log[i - 1].day.to_serial(), log[i].day.to_serial());
    }
  }
}

TEST(QueryLog, DeterministicInSeed) {
  const auto aggregate =
      make_aggregate(Date{2016, 6, 1}, Date{2016, 8, 30}, 777);
  EXPECT_EQ(synthesize_log("c.com", aggregate, 9),
            synthesize_log("c.com", aggregate, 9));
  EXPECT_NE(synthesize_log("c.com", aggregate, 9),
            synthesize_log("c.com", aggregate, 10));
}

TEST(QueryLog, RoundTripPropertyOverRandomAggregates) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const Date first = Date{2014, 8, 4}.plus_days(
        static_cast<std::int64_t>(rng.uniform(0, 900)));
    const Date last =
        first.plus_days(static_cast<std::int64_t>(rng.uniform(0, 400)));
    const std::uint64_t count = 2 + rng.uniform(0, 100000);
    const auto aggregate = make_aggregate(first, last, count);
    const std::string domain = "d" + std::to_string(i) + ".com";
    PassiveDnsDb db;
    ingest(db, synthesize_log(domain, aggregate, i));
    const DnsAggregate* rebuilt = db.lookup(domain);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(rebuilt->query_count, count);
    EXPECT_EQ(rebuilt->first_seen, first);
    EXPECT_EQ(rebuilt->last_seen, last);
  }
}

TEST(QueryLog, TextFormatRoundTrip) {
  QueryLogEntry entry{"example.com", Date{2017, 9, 21}, 42,
                      Ipv4(192, 0, 2, 7)};
  const std::string line = format_log_line(entry);
  EXPECT_EQ(line, "2017-09-21 example.com 42 192.0.2.7");
  auto parsed = parse_log_line(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), entry);

  QueryLogEntry no_ip{"a.net", Date{2016, 1, 2}, 1, std::nullopt};
  auto parsed2 = parse_log_line(format_log_line(no_ip));
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(parsed2.value(), no_ip);
}

TEST(QueryLog, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_log_line("").ok());
  EXPECT_FALSE(parse_log_line("2017-09-21 example.com").ok());
  EXPECT_FALSE(parse_log_line("yesterday example.com 42").ok());
  EXPECT_FALSE(parse_log_line("2017-09-21 example.com zero").ok());
  EXPECT_FALSE(parse_log_line("2017-09-21 example.com 0").ok());
  EXPECT_FALSE(parse_log_line("2017-09-21 example.com 42 not-an-ip").ok());
  EXPECT_FALSE(parse_log_line("2017-09-21 a.com 1 1.2.3.4 extra").ok());
}

TEST(QueryLog, EcosystemAggregatesSurviveLogExpansion) {
  // Expand + ingest a slice of the generated pDNS and compare.
  const auto eco = ecosystem::generate(ecosystem::Scenario::tiny());
  PassiveDnsDb rebuilt;
  std::size_t checked = 0;
  for (const auto& [domain, aggregate] : eco.pdns.all()) {
    if (aggregate.query_count < 2) {
      continue;  // single look-ups cannot witness their span
    }
    ingest(rebuilt, synthesize_log(domain, aggregate, eco.scenario.seed));
    const DnsAggregate* copy = rebuilt.lookup(domain);
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->query_count, aggregate.query_count) << domain;
    EXPECT_EQ(copy->active_days(), aggregate.active_days()) << domain;
    if (++checked == 500) {
      break;
    }
  }
  EXPECT_EQ(checked, 500U);
}

}  // namespace
}  // namespace idnscope::dns
