// Confusable / homoglyph table tests.
#include <gtest/gtest.h>

#include <set>

#include "idnscope/unicode/confusables.h"
#include "idnscope/unicode/scripts.h"

namespace idnscope::unicode {
namespace {

TEST(Confusables, TableNonEmptyAndSorted) {
  const auto table = all_homoglyphs();
  ASSERT_GT(table.size(), 150U);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LE(table[i - 1].ascii_base, table[i].ascii_base);
  }
}

TEST(Confusables, AllCodePointsDistinct) {
  std::set<char32_t> seen;
  for (const Homoglyph& h : all_homoglyphs()) {
    EXPECT_TRUE(seen.insert(h.code_point).second)
        << std::hex << static_cast<std::uint32_t>(h.code_point);
  }
}

TEST(Confusables, EveryLetterHasHomoglyphs) {
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_FALSE(homoglyphs_of(c).empty()) << c;
  }
}

TEST(Confusables, EveryLetterHasANearOrIdenticalEntry) {
  // The homograph planting machinery needs a deceptive substitution for
  // every letter of every brand.
  for (char c = 'a'; c <= 'z'; ++c) {
    bool found = false;
    for (const Homoglyph& h : homoglyphs_of(c)) {
      if (h.visual == VisualClass::kIdentical ||
          h.visual == VisualClass::kNear) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << c;
  }
}

TEST(Confusables, HomoglyphsOfMatchesFind) {
  for (const Homoglyph& h : all_homoglyphs()) {
    const Homoglyph* found = find_homoglyph(h.code_point);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->ascii_base, h.ascii_base);
    bool in_bucket = false;
    for (const Homoglyph& bucket_entry : homoglyphs_of(h.ascii_base)) {
      if (bucket_entry.code_point == h.code_point) {
        in_bucket = true;
      }
    }
    EXPECT_TRUE(in_bucket);
  }
}

TEST(Confusables, FindRejectsUnknown) {
  EXPECT_EQ(find_homoglyph(U'a'), nullptr);   // ASCII is not in the table
  EXPECT_EQ(find_homoglyph(0x4E2D), nullptr); // 中
}

TEST(Confusables, KnownIdenticalPairs) {
  // The classic homograph letters from the paper's apple.com example.
  const Homoglyph* cyrillic_a = find_homoglyph(0x0430);
  ASSERT_NE(cyrillic_a, nullptr);
  EXPECT_EQ(cyrillic_a->ascii_base, 'a');
  EXPECT_EQ(cyrillic_a->visual, VisualClass::kIdentical);
  EXPECT_EQ(cyrillic_a->accent, Accent::kNone);

  const Homoglyph* omicron = find_homoglyph(0x03BF);
  ASSERT_NE(omicron, nullptr);
  EXPECT_EQ(omicron->ascii_base, 'o');
  EXPECT_EQ(omicron->visual, VisualClass::kIdentical);
}

TEST(Confusables, SkeletonChar) {
  EXPECT_EQ(skeleton_char(U'a'), 'a');
  EXPECT_EQ(skeleton_char(U'A'), 'a');  // lowercased
  EXPECT_EQ(skeleton_char(U'7'), '7');
  EXPECT_EQ(skeleton_char(U'-'), '-');
  EXPECT_EQ(skeleton_char(0x0430), 'a');  // Cyrillic а
  EXPECT_EQ(skeleton_char(0x00E9), 'e');  // é
  EXPECT_EQ(skeleton_char(0x4E2D), std::nullopt);  // 中
}

TEST(Confusables, AsciiSkeletonWholeString) {
  std::u32string apple = U"apple.com";
  apple[0] = 0x0430;
  auto skeleton = ascii_skeleton(apple);
  ASSERT_TRUE(skeleton.has_value());
  EXPECT_EQ(*skeleton, "apple.com");

  EXPECT_EQ(ascii_skeleton(U"中文"), std::nullopt);
  EXPECT_EQ(ascii_skeleton(U""), "");
}

TEST(Confusables, IdenticalEntriesRenderFromBaseWithNoAccent) {
  for (const Homoglyph& h : all_homoglyphs()) {
    if (h.visual == VisualClass::kIdentical) {
      EXPECT_EQ(h.accent, Accent::kNone)
          << std::hex << static_cast<std::uint32_t>(h.code_point);
    }
  }
}

TEST(Confusables, IdenticalEntriesAreNonAsciiCodePoints) {
  // Pixel-identical twins come from foreign scripts (Cyrillic а, Greek ο,
  // ...) or IPA-style Latin clones (ɡ U+0261); never from ASCII itself.
  for (const Homoglyph& h : all_homoglyphs()) {
    if (h.visual == VisualClass::kIdentical) {
      EXPECT_GE(h.code_point, 0x80U)
          << std::hex << static_cast<std::uint32_t>(h.code_point);
    }
  }
}

TEST(Confusables, RelatedLettersAreSane) {
  for (char c = 'a'; c <= 'z'; ++c) {
    for (char related : related_letters(c)) {
      EXPECT_NE(related, c);
      EXPECT_TRUE((related >= 'a' && related <= 'z') ||
                  (related >= '0' && related <= '9'))
          << c << " -> " << related;
    }
  }
}

TEST(Confusables, AccentNamesDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i <= static_cast<int>(Accent::kOpenShape); ++i) {
    names.insert(accent_name(static_cast<Accent>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(Accent::kOpenShape) + 1);
}

}  // namespace
}  // namespace idnscope::unicode
