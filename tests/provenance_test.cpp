// Provenance-ledger tests: the deterministic merge order under threaded
// appends, the sampling-mode knob, capacity accounting, the strict JSONL
// round-trip, and the detector emission contract driven end-to-end through
// the brand-protection gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "idnscope/core/brand_protection.h"
#include "idnscope/ecosystem/brands.h"
#include "idnscope/idna/lookalike.h"
#include "idnscope/obs/export.h"
#include "idnscope/obs/metrics.h"
#include "idnscope/obs/provenance.h"

namespace idnscope {
namespace {

// The ledger is process-global and shared by every test in this binary;
// each test starts from a clean slate with an explicit mode.
void reset_ledger(obs::ProvenanceMode mode) {
  obs::Ledger::global().reset();
  obs::Ledger::global().set_options(obs::ProvenanceOptions{mode});
}

obs::ProvenanceRecord make_record(std::string domain,
                                  obs::ProvDetector detector,
                                  std::string rule, bool flagged,
                                  std::uint32_t seq = 0) {
  obs::ProvenanceRecord record;
  record.domain = std::move(domain);
  record.domain_id = 7;
  record.detector = detector;
  record.rule = std::move(rule);
  record.brand = "apple.com";
  record.score_micros = obs::to_micros(0.987654);
  record.nonascii = 2;
  record.suffix = ".com";
  record.flagged = flagged;
  record.seq = seq;
  return record;
}

TEST(Provenance, DetectorNamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kProvDetectorCount; ++i) {
    const auto detector = static_cast<obs::ProvDetector>(i);
    obs::ProvDetector parsed;
    ASSERT_TRUE(obs::prov_detector_from_name(obs::prov_detector_name(detector),
                                             parsed));
    EXPECT_EQ(parsed, detector);
  }
  obs::ProvDetector parsed;
  EXPECT_FALSE(obs::prov_detector_from_name("frobnicator", parsed));
  EXPECT_FALSE(obs::prov_detector_from_name("", parsed));
}

TEST(Provenance, AceSuffixFacet) {
  EXPECT_EQ(obs::ace_suffix("xn--pple-43d.com"), ".com");
  EXPECT_EQ(obs::ace_suffix("a.b.org"), ".org");
  EXPECT_EQ(obs::ace_suffix("nodot"), "");
}

TEST(Provenance, SubjectScopeNestsAndRestores) {
  EXPECT_EQ(obs::current_subject_id(), -1);
  {
    const obs::SubjectScope outer(42);
    EXPECT_EQ(obs::current_subject_id(), 42);
    {
      const obs::SubjectScope inner(7);
      EXPECT_EQ(obs::current_subject_id(), 7);
    }
    EXPECT_EQ(obs::current_subject_id(), 42);
  }
  EXPECT_EQ(obs::current_subject_id(), -1);
}

// The determinism contract's load-bearing half: the merged order is a pure
// function of the record multiset, not of append interleaving.  Eight
// threads race disjoint slices of the same record set; the merge must equal
// the serial append's merge byte-for-byte (compared here field-for-field).
TEST(Provenance, MergedOrderIsThreadInvariant) {
  std::vector<obs::ProvenanceRecord> records;
  for (int i = 0; i < 64; ++i) {
    const std::string domain =
        "xn--d" + std::to_string(i % 13) + ".com";  // collide domains too
    records.push_back(make_record(
        domain, static_cast<obs::ProvDetector>(i % 5), "rule_a", true,
        static_cast<std::uint32_t>(i / 13)));
  }

  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  for (const auto& record : records) {
    obs::Ledger::global().append(record);
  }
  const auto serial = obs::Ledger::global().merged();
  ASSERT_EQ(serial.size(), records.size());
  EXPECT_TRUE(
      std::is_sorted(serial.begin(), serial.end(), obs::provenance_record_less));

  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  std::vector<std::thread> workers;
  for (int worker = 0; worker < 8; ++worker) {
    workers.emplace_back([worker, &records] {
      for (std::size_t i = worker; i < records.size(); i += 8) {
        obs::Ledger::global().append(records[i]);
      }
    });
  }
  for (std::thread& thread : workers) {
    thread.join();
  }
  const auto threaded = obs::Ledger::global().merged();
  EXPECT_EQ(serial, threaded);
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
}

TEST(Provenance, SamplingModeGatesAppends) {
  reset_ledger(obs::ProvenanceMode::kOff);
  EXPECT_FALSE(obs::Ledger::global().enabled(true));
  EXPECT_FALSE(obs::Ledger::global().enabled(false));
  obs::Ledger::global().append(
      make_record("a.com", obs::ProvDetector::kHomograph, "r", true));
  EXPECT_EQ(obs::Ledger::global().retained(), 0U);

  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  EXPECT_TRUE(obs::Ledger::global().enabled(true));
  EXPECT_FALSE(obs::Ledger::global().enabled(false));
  obs::Ledger::global().append(
      make_record("a.com", obs::ProvDetector::kHomograph, "hit", true));
  obs::Ledger::global().append(
      make_record("b.com", obs::ProvDetector::kHomograph, "no_match", false));
  EXPECT_EQ(obs::Ledger::global().retained(), 1U);
  EXPECT_EQ(obs::Ledger::global().merged()[0].rule, "hit");

  reset_ledger(obs::ProvenanceMode::kFull);
  EXPECT_TRUE(obs::Ledger::global().enabled(true));
  EXPECT_TRUE(obs::Ledger::global().enabled(false));
  obs::Ledger::global().append(
      make_record("a.com", obs::ProvDetector::kHomograph, "hit", true));
  obs::Ledger::global().append(
      make_record("b.com", obs::ProvDetector::kHomograph, "no_match", false));
  EXPECT_EQ(obs::Ledger::global().retained(), 2U);
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
}

// The capacity cap is a safety valve: appends past kMaxRecords drop (and
// count), totals stay workload math.  Minimal records keep the million
// appends cheap.
TEST(Provenance, CapacityCapDropsAndCounts) {
  reset_ledger(obs::ProvenanceMode::kFull);
  obs::ProvenanceRecord tiny;
  tiny.domain = "x.com";
  tiny.flagged = true;
  for (std::size_t i = 0; i < obs::Ledger::kMaxRecords + 7; ++i) {
    obs::Ledger::global().append(tiny);
  }
  EXPECT_EQ(obs::Ledger::global().retained(), obs::Ledger::kMaxRecords);
  EXPECT_EQ(obs::Ledger::global().dropped(), 7U);
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  EXPECT_EQ(obs::Ledger::global().retained(), 0U);
  EXPECT_EQ(obs::Ledger::global().dropped(), 0U);
}

// --- JSONL serialization ----------------------------------------------------

TEST(Provenance, JsonlRoundTripsWithHeader) {
  std::vector<obs::ProvenanceRecord> records;
  records.push_back(make_record("xn--pple-43d.com",
                                obs::ProvDetector::kHomograph,
                                "skeleton_identical_twin", true));
  auto semantic = make_record("xn--apple-666.com",
                              obs::ProvDetector::kSemanticT1,
                              "ascii_strip_brand_match", true);
  semantic.brand = "58.com";  // UTF-8-adjacent alphabet stays unescaped
  records.push_back(semantic);
  std::sort(records.begin(), records.end(), obs::provenance_record_less);

  obs::GeneratedBy workload;
  workload.bench = "unit";
  workload.seed = 20170921;
  workload.bulk_scale = 1000;
  workload.abuse_scale = 50;
  const std::string jsonl =
      obs::provenance_to_jsonl("unit", records, 3, workload);
  EXPECT_TRUE(jsonl.starts_with("{\"dropped\":3,\"generated_by\":"));

  const auto parsed = obs::parse_provenance(jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "unit");
  EXPECT_EQ(parsed->dropped, 3U);
  EXPECT_EQ(parsed->generated_by, workload);
  EXPECT_EQ(parsed->records, records);

  // Equal multisets serialize to equal bytes (what the CI byte-diff rides).
  std::vector<obs::ProvenanceRecord> shuffled = {records[1], records[0]};
  std::sort(shuffled.begin(), shuffled.end(), obs::provenance_record_less);
  EXPECT_EQ(obs::provenance_to_jsonl("unit", shuffled, 3, workload), jsonl);
}

TEST(Provenance, ParseRejectsMalformedLedgers) {
  const std::vector<obs::ProvenanceRecord> records = {make_record(
      "xn--pple-43d.com", obs::ProvDetector::kHomograph, "ssim_scan", true)};
  const std::string good =
      obs::provenance_to_jsonl("unit", records, 0, obs::GeneratedBy{});
  ASSERT_TRUE(obs::parse_provenance(good).has_value());

  EXPECT_FALSE(obs::parse_provenance("").has_value());
  EXPECT_FALSE(obs::parse_provenance("not a ledger").has_value());
  // Header record count must equal the number of record lines.
  std::string miscounted = good;
  const std::size_t pos = miscounted.find("\"records\":1");
  ASSERT_NE(pos, std::string::npos);
  miscounted.replace(pos, 11, "\"records\":2");
  EXPECT_FALSE(obs::parse_provenance(miscounted).has_value());
  // Unknown detector names are rejected, not skipped.
  std::string bad_detector = good;
  const std::size_t det = bad_detector.find("homograph");
  ASSERT_NE(det, std::string::npos);
  bad_detector.replace(det, 9, "halograph");
  EXPECT_FALSE(obs::parse_provenance(bad_detector).has_value());
  // Trailing garbage after the counted records is rejected.
  EXPECT_FALSE(obs::parse_provenance(good + "junk\n").has_value());
}

// --- detector integration ---------------------------------------------------

// One audited lookalike must leave a joinable evidence chain: the gate's
// own audit verdict plus the inner homograph detector's record, same
// subject, both flagged.
TEST(Provenance, GateAuditEmitsEvidenceChain) {
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  const std::pair<std::size_t, char32_t> sub{0, 0x0430};  // Cyrillic а
  const auto domain = idna::substitute("apple.com", {&sub, 1});
  ASSERT_TRUE(domain.has_value());

  const core::BrandProtectionGate gate(ecosystem::alexa_top(100));
  const std::vector<std::string> audited = {*domain};
  const auto result = gate.audit(audited);
  EXPECT_EQ(result.rejected_visual, 1U);

  const auto merged = obs::Ledger::global().merged();
  bool gate_record = false;
  bool homograph_record = false;
  for (const auto& record : merged) {
    if (record.domain != *domain || !record.flagged) {
      continue;
    }
    if (record.detector == obs::ProvDetector::kBrandProtection) {
      EXPECT_EQ(record.rule, "audit_reject_visual");
      EXPECT_EQ(record.brand, "apple.com");
      gate_record = true;
    }
    if (record.detector == obs::ProvDetector::kHomograph) {
      EXPECT_EQ(record.brand, "apple.com");
      EXPECT_EQ(record.suffix, ".com");
      homograph_record = true;
    }
  }
  EXPECT_TRUE(gate_record);
  EXPECT_TRUE(homograph_record);
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
}

// flagged_only must not record accepts; full must.  Raw registrant input
// that fails validation is sanitized into the record alphabet.
TEST(Provenance, GateCheckHonorsModeAndSanitizesRawInput) {
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  const core::BrandProtectionGate gate(ecosystem::alexa_top(100));
  (void)gate.check("blameless-garden", "com", "");
  EXPECT_EQ(obs::Ledger::global().retained(), 0U);  // accept not recorded

  reset_ledger(obs::ProvenanceMode::kFull);
  (void)gate.check("blameless-garden", "com", "");
  // Full mode records the whole negative chain: the inner homograph and
  // semantic no-match decisions plus the gate's own accept.
  auto merged = obs::Ledger::global().merged();
  ASSERT_EQ(merged.size(), 3U);
  std::size_t accepts = 0;
  for (const auto& record : merged) {
    EXPECT_FALSE(record.flagged);
    if (record.detector == obs::ProvDetector::kBrandProtection) {
      EXPECT_EQ(record.rule, "gate_accept");
      ++accepts;
    } else {
      EXPECT_EQ(record.rule, "no_match");
    }
  }
  EXPECT_EQ(accepts, 1U);

  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  const auto decision = gate.check("ap\"ple", "com", "");
  EXPECT_EQ(decision.verdict, core::RegistrationVerdict::kRejectInvalid);
  merged = obs::Ledger::global().merged();
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0].rule, "gate_reject_invalid");
  EXPECT_EQ(merged[0].domain, "ap?ple.com");  // '"' forced out of the alphabet
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
}

// --- emit_metrics integration ----------------------------------------------

TEST(Provenance, EmitMetricsWritesProvFileAndBytesGauge) {
  obs::Registry::global().reset();
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
  obs::Ledger::global().append(make_record(
      "xn--pple-43d.com", obs::ProvDetector::kHomograph, "ssim_scan", true));
  obs::note_workload(obs::GeneratedBy{"prov_unit", 20170921, 1000, 50});

  const std::string dir = ::testing::TempDir() + "idnscope_prov_emit_test";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("IDNSCOPE_OBS_DIR", dir.c_str(), 1), 0);
  obs::emit_metrics("prov_unit");
  ASSERT_EQ(unsetenv("IDNSCOPE_OBS_DIR"), 0);
  obs::note_workload(obs::GeneratedBy{});  // un-note for later tests

  const std::string prov_path = dir + "/PROV_prov_unit.jsonl";
  ASSERT_TRUE(std::filesystem::exists(prov_path));
  std::string text;
  {
    std::FILE* in = std::fopen(prov_path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    char buffer[65536];
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), in);
    std::fclose(in);
    text.assign(buffer, got);
  }
  const auto parsed = obs::parse_provenance(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "prov_unit");
  EXPECT_EQ(parsed->generated_by.bench, "prov_unit");
  EXPECT_EQ(parsed->generated_by.seed, 20170921U);
  ASSERT_EQ(parsed->records.size(), 1U);
  EXPECT_EQ(parsed->records[0].rule, "ssim_scan");

  // The ledger's serialized size was noted *before* the snapshot, so the
  // METRICS file gates the ledger's cost.
  const auto snapshot = obs::Registry::global().snapshot();
  const auto gauge = snapshot.gauges.find("obs.provenance.bytes");
  ASSERT_NE(gauge, snapshot.gauges.end());
  EXPECT_EQ(gauge->second, static_cast<std::int64_t>(text.size()));

  std::filesystem::remove_all(dir);
  reset_ledger(obs::ProvenanceMode::kFlaggedOnly);
}

}  // namespace
}  // namespace idnscope
