// Unicode script classification tests.
#include <gtest/gtest.h>

#include "idnscope/unicode/scripts.h"
#include "idnscope/unicode/utf8.h"

namespace idnscope::unicode {
namespace {

struct ScriptCase {
  char32_t cp;
  Script expected;
};

class ScriptOfTest : public ::testing::TestWithParam<ScriptCase> {};

TEST_P(ScriptOfTest, Classifies) {
  EXPECT_EQ(script_of(GetParam().cp), GetParam().expected)
      << std::hex << static_cast<std::uint32_t>(GetParam().cp);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, ScriptOfTest,
    ::testing::Values(
        ScriptCase{U'a', Script::kLatin}, ScriptCase{U'Z', Script::kLatin},
        ScriptCase{U'5', Script::kCommon}, ScriptCase{U'-', Script::kCommon},
        ScriptCase{U'.', Script::kCommon},
        ScriptCase{0x00E9, Script::kLatin},    // é
        ScriptCase{0x0153, Script::kLatin},    // œ
        ScriptCase{0x1E63, Script::kLatin},    // ṣ (Latin Ext Additional)
        ScriptCase{0x03B1, Script::kGreek},    // α
        ScriptCase{0x03C9, Script::kGreek},    // ω
        ScriptCase{0x0430, Script::kCyrillic}, // а
        ScriptCase{0x044F, Script::kCyrillic}, // я
        ScriptCase{0x0501, Script::kCyrillic}, // ԁ
        ScriptCase{0x0561, Script::kArmenian}, // ա
        ScriptCase{0x05D0, Script::kHebrew},   // א
        ScriptCase{0x0627, Script::kArabic},   // ا
        ScriptCase{0x067E, Script::kArabic},   // پ (Persian pe)
        ScriptCase{0x0915, Script::kDevanagari},
        ScriptCase{0x0995, Script::kBengali},
        ScriptCase{0x0E01, Script::kThai},     // ก
        ScriptCase{0x0E81, Script::kLao},
        ScriptCase{0x0F40, Script::kTibetan},
        ScriptCase{0x1000, Script::kMyanmar},
        ScriptCase{0x10D0, Script::kGeorgian},
        ScriptCase{0x1100, Script::kHangul},
        ScriptCase{0xAC00, Script::kHangul},   // 가
        ScriptCase{0xD55C, Script::kHangul},   // 한
        ScriptCase{0x1820, Script::kMongolian},
        ScriptCase{0x1780, Script::kKhmer},
        ScriptCase{0x3042, Script::kHiragana}, // あ
        ScriptCase{0x30A2, Script::kKatakana}, // ア
        ScriptCase{0x30FC, Script::kKatakana}, // ー
        ScriptCase{0x3105, Script::kBopomofo},
        ScriptCase{0x4E2D, Script::kHan},      // 中
        ScriptCase{0x9FFF, Script::kHan},
        ScriptCase{0x3400, Script::kHan},      // ext A
        ScriptCase{0x20000, Script::kHan},     // ext B
        ScriptCase{0x0301, Script::kInherited},
        ScriptCase{0x2028, Script::kCommon},   // general punctuation
        ScriptCase{0xFFFD, Script::kUnknown}));

TEST(Scripts, NamesAreStable) {
  EXPECT_EQ(script_name(Script::kLatin), "Latin");
  EXPECT_EQ(script_name(Script::kHan), "Han");
  EXPECT_EQ(script_name(Script::kUnknown), "Unknown");
}

TEST(Scripts, CombiningMarks) {
  EXPECT_TRUE(is_combining_mark(0x0300));
  EXPECT_TRUE(is_combining_mark(0x036F));
  EXPECT_TRUE(is_combining_mark(0x3099));  // kana voicing
  EXPECT_FALSE(is_combining_mark(U'a'));
  EXPECT_FALSE(is_combining_mark(0x4E2D));
}

TEST(Scripts, ScriptsInCollectsDistinctNonCommon) {
  const auto scripts = scripts_in(U"abc123中文");
  ASSERT_EQ(scripts.size(), 2U);
  EXPECT_EQ(scripts[0], Script::kLatin);
  EXPECT_EQ(scripts[1], Script::kHan);
}

TEST(Scripts, SingleScript) {
  EXPECT_TRUE(is_single_script(U"abc"));
  EXPECT_TRUE(is_single_script(U"abc-123"));     // Common ignored
  EXPECT_TRUE(is_single_script(U""));
  EXPECT_TRUE(is_single_script(U"123"));         // only Common
  EXPECT_TRUE(is_single_script(std::u32string{0x0441, 0x043E, 0x0441, 0x043E}));
  EXPECT_FALSE(is_single_script(std::u32string{U'a', 0x0430}));  // Latin+Cyr
  // Combining marks are Inherited and must not break single-script.
  EXPECT_TRUE(is_single_script(std::u32string{U'a', 0x0301, U'b'}));
}

TEST(Scripts, CjkHelper) {
  EXPECT_TRUE(is_cjk_script(Script::kHan));
  EXPECT_TRUE(is_cjk_script(Script::kHiragana));
  EXPECT_TRUE(is_cjk_script(Script::kKatakana));
  EXPECT_TRUE(is_cjk_script(Script::kHangul));
  EXPECT_TRUE(is_cjk_script(Script::kBopomofo));
  EXPECT_FALSE(is_cjk_script(Script::kLatin));
  EXPECT_FALSE(is_cjk_script(Script::kThai));
}

}  // namespace
}  // namespace idnscope::unicode
