// Seeded property tests: punycode encode/decode round-trips, IDNA
// ToASCII/ToUnicode idempotence over generated Unicode labels, and the
// zone-delta algebra (apply∘invert identity, split-replay composition).
// 10k cases each from a fixed seed; failures shrink to a minimal case and
// report the seed + fork tag needed to replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "idnscope/dns/record.h"
#include "idnscope/dns/zone.h"
#include "idnscope/ecosystem/ecosystem.h"
#include "idnscope/ecosystem/timeline.h"
#include "idnscope/idna/idna.h"
#include "idnscope/idna/punycode.h"
#include "property_common.h"

namespace idnscope {
namespace {

using testing::PropertyConfig;
using testing::check_property;

std::string print_label(const std::u32string& label) {
  std::string out = "[";
  for (std::size_t i = 0; i < label.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%sU+%04X", i == 0 ? "" : " ",
                  static_cast<unsigned>(label[i]));
    out += buf;
  }
  return out + "]";
}

// Shrink candidates: every drop-one-code-point label, then every
// replace-one-code-point-with-'a' label — enough to reduce most codec
// failures to one or two interesting code points.
std::vector<std::u32string> shrink_label(const std::u32string& label) {
  std::vector<std::u32string> out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label.size() > 1) {
      std::u32string dropped = label;
      dropped.erase(i, 1);
      out.push_back(std::move(dropped));
    }
    if (label[i] != U'a') {
      std::u32string replaced = label;
      replaced[i] = U'a';
      out.push_back(std::move(replaced));
    }
  }
  return out;
}

// Any Unicode scalar value (excluding surrogates — not code points).
char32_t random_scalar(Rng& rng) {
  while (true) {
    const char32_t cp = static_cast<char32_t>(rng.uniform(1, 0x10FFFF));
    if (cp < 0xD800 || cp > 0xDFFF) {
      return cp;
    }
  }
}

TEST(PunycodeProperty, EncodeDecodeRoundTrips) {
  std::uint64_t encoded_ok = 0;
  check_property<std::u32string>(
      "punycode_round_trip", PropertyConfig{},
      [](Rng& rng) {
        std::u32string label;
        const std::size_t len = rng.uniform(1, 12);
        for (std::size_t i = 0; i < len; ++i) {
          label.push_back(random_scalar(rng));
        }
        return label;
      },
      [&](const std::u32string& label) {
        const auto encoded = idna::punycode_encode(label);
        if (!encoded.ok()) {
          return false;  // every scalar-value label must encode
        }
        ++encoded_ok;
        const auto decoded = idna::punycode_decode(encoded.value());
        return decoded.ok() && decoded.value() == label;
      },
      shrink_label, print_label);
  EXPECT_EQ(encoded_ok, 10000U);  // the property never hit the early-outs
}

// Code points the IDNA validator accepts, gathered once (deterministic —
// pure function of the validation tables).
const std::vector<char32_t>& idna_allowed_pool() {
  static const std::vector<char32_t> pool = [] {
    std::vector<char32_t> out;
    for (char32_t cp = 0x21; cp < 0x30000; ++cp) {
      if (idna::is_idna_allowed(cp)) {
        out.push_back(cp);
      }
    }
    return out;
  }();
  return pool;
}

TEST(IdnaProperty, ToAsciiToUnicodeIdempotent) {
  const std::vector<char32_t>& pool = idna_allowed_pool();
  ASSERT_FALSE(pool.empty());
  std::uint64_t converted = 0;
  check_property<std::u32string>(
      "idna_idempotence", PropertyConfig{},
      [&](Rng& rng) {
        std::u32string label;
        const std::size_t len = rng.uniform(1, 12);
        for (std::size_t i = 0; i < len; ++i) {
          label.push_back(pool[rng.uniform(0, pool.size() - 1)]);
        }
        return label;
      },
      [&](const std::u32string& label) {
        const auto ascii = idna::label_to_ascii(label);
        if (!ascii.ok()) {
          return true;  // rejected labels (hyphen rules, length) are fine
        }
        ++converted;
        // ToUnicode(ToASCII(x)) must be decodable, and re-encoding that
        // display form must reproduce the ACE bytes exactly.
        const auto unicode = idna::label_to_unicode(ascii.value());
        if (!unicode.ok()) {
          return false;
        }
        const auto ascii_again = idna::label_to_ascii(unicode.value());
        return ascii_again.ok() && ascii_again.value() == ascii.value();
      },
      shrink_label, print_label);
  // The property must not pass vacuously: most generated labels convert.
  EXPECT_GT(converted, 1000U);
}

// --- zone-delta algebra (ecosystem/timeline.h, DESIGN.md §11) ---------------

// Fixed name pool the delta generator draws from: ASCII, ACE-SLD and
// ACE-TLD domains, live and unregistered, clean and blacklisted.
const std::vector<std::string>& delta_pool() {
  static const std::vector<std::string> pool = {
      "a0.com",      "a1.com",      "a2.com",      "a3.com",
      "xn--b0.com",  "xn--b1.com",  "xn--b2.com",  "xn--b3.com",
      "c0.xn--p1ai", "c1.xn--p1ai",
  };
  return pool;
}

// Deterministic micro-world over the pool: two zones, three live IDNs (two
// of them listed), two live ASCII names, the rest unregistered.
ecosystem::Ecosystem delta_world() {
  ecosystem::Ecosystem eco;
  dns::Zone com("com");
  for (const char* owner : {"a0.com", "a1.com", "xn--b0.com", "xn--b1.com"}) {
    com.add({owner, 172800, dns::RrType::kNs, "ns1.dns.example"});
  }
  dns::Zone ru("xn--p1ai");
  ru.add({"c0.xn--p1ai", 172800, dns::RrType::kNs, "ns1.dns.example"});
  eco.zones.push_back(std::move(com));
  eco.zones.push_back(std::move(ru));
  eco.idns = {"xn--b0.com", "xn--b1.com", "c0.xn--p1ai"};
  eco.sampled_non_idns = {"a0.com", "a1.com"};
  eco.blacklist["xn--b1.com"] = 3;
  eco.blacklist["c0.xn--p1ai"] = 255;
  return eco;
}

// One random *valid* delta against `state`: at most one record per pool
// name, each action legal for that name's current lifecycle position.
ecosystem::DayDelta random_delta(Rng& rng, const ecosystem::TimelineState& state,
                                 std::uint32_t day) {
  ecosystem::DayDelta delta;
  delta.day = day;
  delta.seed = 1;
  for (const std::string& name : delta_pool()) {
    const auto it = state.domains.find(name);
    const bool live = it != state.domains.end() && it->second.live;
    const bool idn = ecosystem::delta_domain_is_idn(name);
    if (!live) {
      if (rng.chance(0.35)) {
        delta.records.push_back(
            {ecosystem::DeltaKind::kRegister, name, idn, 0});
      }
      continue;
    }
    if (rng.chance(0.25)) {
      delta.records.push_back(
          {ecosystem::DeltaKind::kExpire, name, it->second.is_idn, 0});
    } else if (idn && it->second.mask == 0 && rng.chance(0.3)) {
      delta.records.push_back(
          {ecosystem::DeltaKind::kBlacklistOn, name, false,
           static_cast<std::uint8_t>(rng.uniform(1, 255))});
    } else if (idn && it->second.mask != 0 && rng.chance(0.5)) {
      delta.records.push_back({ecosystem::DeltaKind::kBlacklistOff, name,
                               false, it->second.mask});
    }
  }
  return delta;
}

// The live world as a comparable value (std::map iteration is sorted, so
// the projection is canonical).  Expired names and never-registered names
// are both "not live" — the round-trip identity is over this view.
std::vector<std::tuple<std::string, bool, std::uint8_t>> live_view(
    const ecosystem::TimelineState& state) {
  std::vector<std::tuple<std::string, bool, std::uint8_t>> out;
  for (const auto& [name, entry] : state.domains) {
    if (entry.live) {
      out.emplace_back(name, entry.is_idn, entry.mask);
    }
  }
  return out;
}

std::vector<std::string> sorted_copy(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<ecosystem::DayDelta> shrink_delta(
    const ecosystem::DayDelta& delta) {
  // Records touch distinct pool names, so any drop-one subset is still a
  // valid delta — minimal counterexamples are single records.
  std::vector<ecosystem::DayDelta> out;
  for (std::size_t i = 0; i < delta.records.size(); ++i) {
    ecosystem::DayDelta smaller = delta;
    smaller.records.erase(smaller.records.begin() +
                          static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(smaller));
  }
  return out;
}

TEST(DeltaProperty, ApplyThenInvertRestoresThePriorDay) {
  std::uint64_t nonempty = 0;
  check_property<ecosystem::DayDelta>(
      "delta_apply_invert", PropertyConfig{},
      [](Rng& rng) {
        const auto state =
            ecosystem::TimelineState::from(delta_world());
        return random_delta(rng, state, 1);
      },
      [&](const ecosystem::DayDelta& delta) {
        auto eco = delta_world();
        auto state = ecosystem::TimelineState::from(eco);
        // An expire record carries the idn flag but not the blacklist mask,
        // so undoing an expiry restores the name *clean*: the round-trip
        // identity is over the domain set and idn flags; masks survive for
        // every name the delta did not expire.
        std::vector<std::string> expired;
        for (const auto& record : delta.records) {
          if (record.kind == ecosystem::DeltaKind::kExpire) {
            expired.push_back(record.domain);
          }
        }
        auto expected_live = live_view(state);
        for (auto& [name, is_idn, mask] : expected_live) {
          if (std::find(expired.begin(), expired.end(), name) !=
              expired.end()) {
            mask = 0;
          }
        }
        auto expected_blacklist = eco.blacklist;
        for (const std::string& name : expired) {
          expected_blacklist.erase(name);
        }
        const auto before_idns = sorted_copy(eco.idns);
        const auto before_non_idns = sorted_copy(eco.sampled_non_idns);
        if (!ecosystem::apply_delta(eco, state, delta).ok()) {
          return false;  // generated deltas are valid by construction
        }
        nonempty += delta.records.empty() ? 0 : 1;
        // The codec round-trips through the same bytes the CLI would emit.
        const auto reparsed =
            ecosystem::parse_delta(ecosystem::serialize_delta(delta));
        if (!reparsed.ok() || !(reparsed.value() == delta)) {
          return false;
        }
        ecosystem::DayDelta inverse = ecosystem::invert_delta(delta);
        inverse.day = 2;  // days only move forward; the undo is the next day
        if (!ecosystem::apply_delta(eco, state, inverse).ok()) {
          return false;
        }
        return live_view(state) == expected_live &&
               eco.blacklist == expected_blacklist &&
               sorted_copy(eco.idns) == before_idns &&
               sorted_copy(eco.sampled_non_idns) == before_non_idns;
      },
      shrink_delta,
      [](const ecosystem::DayDelta& delta) {
        return ecosystem::serialize_delta(delta);
      });
  // Non-vacuity: almost every case exercises at least one record.
  EXPECT_GT(nonempty, 5000U);
}

struct SplitCase {
  std::uint32_t days = 2;
  std::uint32_t split = 1;
  std::uint64_t salt = 0;
};

TEST(DeltaProperty, SplitReplayComposesToTheSameWorld) {
  check_property<SplitCase>(
      "delta_composition", PropertyConfig{},
      [](Rng& rng) {
        SplitCase c;
        c.days = static_cast<std::uint32_t>(rng.uniform(2, 6));
        c.split = static_cast<std::uint32_t>(rng.uniform(1, c.days - 1));
        c.salt = rng.next_u64();
        return c;
      },
      [](const SplitCase& c) {
        // Derive the day-1..N stream against the evolving reference world.
        Rng rng(c.salt);
        auto reference = delta_world();
        auto ref_state = ecosystem::TimelineState::from(reference);
        std::vector<ecosystem::DayDelta> deltas;
        for (std::uint32_t day = 1; day <= c.days; ++day) {
          deltas.push_back(random_delta(rng, ref_state, day));
          if (!ecosystem::apply_delta(reference, ref_state, deltas.back())
                   .ok()) {
            return false;
          }
        }
        // Path A: one continuous replay of [1..N].
        auto continuous = delta_world();
        auto continuous_state = ecosystem::TimelineState::from(continuous);
        for (const auto& delta : deltas) {
          if (!ecosystem::apply_delta(continuous, continuous_state, delta)
                   .ok()) {
            return false;
          }
        }
        // Path B: [1..k], a serialization boundary, then [k+1..N] from the
        // re-parsed bytes (the pause-and-resume shape of a real feed).
        auto split = delta_world();
        auto split_state = ecosystem::TimelineState::from(split);
        for (std::uint32_t day = 1; day <= c.days; ++day) {
          const ecosystem::DayDelta& delta = deltas[day - 1];
          if (day <= c.split) {
            if (!ecosystem::apply_delta(split, split_state, delta).ok()) {
              return false;
            }
            continue;
          }
          const auto reparsed =
              ecosystem::parse_delta(ecosystem::serialize_delta(delta));
          if (!reparsed.ok() ||
              !ecosystem::apply_delta(split, split_state, reparsed.value())
                   .ok()) {
            return false;
          }
        }
        return continuous_state.day == c.days &&
               split_state.day == c.days &&
               live_view(continuous_state) == live_view(ref_state) &&
               live_view(split_state) == live_view(ref_state) &&
               split.blacklist == reference.blacklist &&
               sorted_copy(split.idns) == sorted_copy(reference.idns) &&
               sorted_copy(split.sampled_non_idns) ==
                   sorted_copy(reference.sampled_non_idns);
      },
      [](const SplitCase& c) {
        std::vector<SplitCase> out;
        if (c.days > 2) {
          SplitCase fewer = c;
          fewer.days -= 1;
          fewer.split = std::min(fewer.split, fewer.days - 1);
          out.push_back(fewer);
        }
        if (c.split > 1) {
          SplitCase earlier = c;
          earlier.split -= 1;
          out.push_back(earlier);
        }
        return out;
      },
      [](const SplitCase& c) {
        return "days=" + std::to_string(c.days) +
               " split=" + std::to_string(c.split) +
               " salt=" + std::to_string(c.salt);
      });
}

}  // namespace
}  // namespace idnscope
