// Seeded property tests for the codec layer: punycode encode/decode
// round-trips and IDNA ToASCII/ToUnicode idempotence over generated
// Unicode labels.  10k cases each from a fixed seed; failures shrink to a
// minimal label and report the seed + fork tag needed to replay.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "idnscope/idna/idna.h"
#include "idnscope/idna/punycode.h"
#include "property_common.h"

namespace idnscope {
namespace {

using testing::PropertyConfig;
using testing::check_property;

std::string print_label(const std::u32string& label) {
  std::string out = "[";
  for (std::size_t i = 0; i < label.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%sU+%04X", i == 0 ? "" : " ",
                  static_cast<unsigned>(label[i]));
    out += buf;
  }
  return out + "]";
}

// Shrink candidates: every drop-one-code-point label, then every
// replace-one-code-point-with-'a' label — enough to reduce most codec
// failures to one or two interesting code points.
std::vector<std::u32string> shrink_label(const std::u32string& label) {
  std::vector<std::u32string> out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label.size() > 1) {
      std::u32string dropped = label;
      dropped.erase(i, 1);
      out.push_back(std::move(dropped));
    }
    if (label[i] != U'a') {
      std::u32string replaced = label;
      replaced[i] = U'a';
      out.push_back(std::move(replaced));
    }
  }
  return out;
}

// Any Unicode scalar value (excluding surrogates — not code points).
char32_t random_scalar(Rng& rng) {
  while (true) {
    const char32_t cp = static_cast<char32_t>(rng.uniform(1, 0x10FFFF));
    if (cp < 0xD800 || cp > 0xDFFF) {
      return cp;
    }
  }
}

TEST(PunycodeProperty, EncodeDecodeRoundTrips) {
  std::uint64_t encoded_ok = 0;
  check_property<std::u32string>(
      "punycode_round_trip", PropertyConfig{},
      [](Rng& rng) {
        std::u32string label;
        const std::size_t len = rng.uniform(1, 12);
        for (std::size_t i = 0; i < len; ++i) {
          label.push_back(random_scalar(rng));
        }
        return label;
      },
      [&](const std::u32string& label) {
        const auto encoded = idna::punycode_encode(label);
        if (!encoded.ok()) {
          return false;  // every scalar-value label must encode
        }
        ++encoded_ok;
        const auto decoded = idna::punycode_decode(encoded.value());
        return decoded.ok() && decoded.value() == label;
      },
      shrink_label, print_label);
  EXPECT_EQ(encoded_ok, 10000U);  // the property never hit the early-outs
}

// Code points the IDNA validator accepts, gathered once (deterministic —
// pure function of the validation tables).
const std::vector<char32_t>& idna_allowed_pool() {
  static const std::vector<char32_t> pool = [] {
    std::vector<char32_t> out;
    for (char32_t cp = 0x21; cp < 0x30000; ++cp) {
      if (idna::is_idna_allowed(cp)) {
        out.push_back(cp);
      }
    }
    return out;
  }();
  return pool;
}

TEST(IdnaProperty, ToAsciiToUnicodeIdempotent) {
  const std::vector<char32_t>& pool = idna_allowed_pool();
  ASSERT_FALSE(pool.empty());
  std::uint64_t converted = 0;
  check_property<std::u32string>(
      "idna_idempotence", PropertyConfig{},
      [&](Rng& rng) {
        std::u32string label;
        const std::size_t len = rng.uniform(1, 12);
        for (std::size_t i = 0; i < len; ++i) {
          label.push_back(pool[rng.uniform(0, pool.size() - 1)]);
        }
        return label;
      },
      [&](const std::u32string& label) {
        const auto ascii = idna::label_to_ascii(label);
        if (!ascii.ok()) {
          return true;  // rejected labels (hyphen rules, length) are fine
        }
        ++converted;
        // ToUnicode(ToASCII(x)) must be decodable, and re-encoding that
        // display form must reproduce the ACE bytes exactly.
        const auto unicode = idna::label_to_unicode(ascii.value());
        if (!unicode.ok()) {
          return false;
        }
        const auto ascii_again = idna::label_to_ascii(unicode.value());
        return ascii_again.ok() && ascii_again.value() == ascii.value();
      },
      shrink_label, print_label);
  // The property must not pass vacuously: most generated labels convert.
  EXPECT_GT(converted, 1000U);
}

}  // namespace
}  // namespace idnscope
