// Malformed-delta corpus: every file under tests/data/delta_corpus/ is fed
// through the strict parser and — when it parses — applied to both replay
// paths over the same hand-built micro-world: ecosystem::apply_delta (the
// full-scan world mutation) and core::Study::apply_delta (the incremental
// table update).  The two must agree byte-for-byte on the error, and on the
// applied prefix that precedes it (the error-prefix contract of DESIGN.md
// §11), mirroring zone_corpus_test.cpp's serial-vs-sharded stance.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "idnscope/core/study.h"
#include "idnscope/dns/record.h"
#include "idnscope/dns/zone.h"
#include "idnscope/ecosystem/ecosystem.h"
#include "idnscope/ecosystem/scenario.h"
#include "idnscope/ecosystem/timeline.h"

#ifndef IDNSCOPE_DELTA_CORPUS_DIR
#error "IDNSCOPE_DELTA_CORPUS_DIR must point at tests/data/delta_corpus"
#endif

namespace idnscope::ecosystem {
namespace {

// Fixed micro-world the corpus records reference by name: one com zone
// with an ASCII domain (alpha.com), a clean IDN (xn--80ak6aa92e.com) and a
// blacklisted IDN (xn--listed-9ya.com, mask 3).  Small enough that every
// corpus file rebuilds it from scratch.
Ecosystem micro_world() {
  Ecosystem eco;
  eco.scenario = Scenario::tiny();
  dns::Zone com("com");
  com.add({"alpha.com", 172800, dns::RrType::kNs, "ns1.dns.example"});
  com.add({"xn--80ak6aa92e.com", 172800, dns::RrType::kNs, "ns1.dns.example"});
  com.add({"xn--listed-9ya.com", 172800, dns::RrType::kNs, "ns1.dns.example"});
  eco.zones.push_back(std::move(com));
  eco.idns = {"xn--80ak6aa92e.com", "xn--listed-9ya.com"};
  eco.blacklist["xn--listed-9ya.com"] = 3;
  return eco;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(IDNSCOPE_DELTA_CORPUS_DIR)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string base_name(const std::string& path) {
  return std::filesystem::path(path).filename().string();
}

struct ApplyOutcome {
  bool ok = false;
  std::string code;
  std::string message;
};

TEST(DeltaCorpus, CorpusIsPresent) {
  // Guard against a silently-empty directory making every test vacuous.
  EXPECT_GE(corpus_files().size(), 12U);
}

TEST(DeltaCorpus, BothApplyPathsAgreeOnEveryFile) {
  for (const std::string& path : corpus_files()) {
    const auto parsed = parse_delta(read_file(path));
    if (!parsed.ok()) {
      // Both paths share the one strict parser; nothing to differentiate.
      continue;
    }
    const DayDelta& delta = parsed.value();

    // The contract's apply order: the study is built over the world, the
    // eco-side apply mutates it first (WHOIS for new registrations), then
    // the incremental study folds the same delta.
    Ecosystem eco = micro_world();
    core::Study study(eco);
    TimelineState state = TimelineState::from(eco);

    ApplyOutcome eco_outcome;
    if (const auto applied = apply_delta(eco, state, delta); applied.ok()) {
      eco_outcome.ok = true;
    } else {
      eco_outcome.code = applied.error().code;
      eco_outcome.message = applied.error().message;
    }
    ApplyOutcome study_outcome;
    if (const auto applied = study.apply_delta(delta); applied.ok()) {
      study_outcome.ok = true;
    } else {
      study_outcome.code = applied.error().code;
      study_outcome.message = applied.error().message;
    }

    EXPECT_EQ(eco_outcome.ok, study_outcome.ok) << base_name(path);
    EXPECT_EQ(eco_outcome.code, study_outcome.code) << base_name(path);
    EXPECT_EQ(eco_outcome.message, study_outcome.message) << base_name(path);

    // Error-prefix agreement: whatever each path applied before stopping,
    // the registered set must match domain-for-domain.
    for (const auto& [domain, entry] : state.domains) {
      EXPECT_EQ(entry.live, study.is_registered(domain))
          << base_name(path) << ": " << domain;
    }
  }
}

// Targeted expectations for the known files, so the corpus cannot rot into
// "everything errors and trivially matches".

struct ParseExpectation {
  const char* name;
  const char* code;
  const char* message;
};

TEST(DeltaCorpus, ParseLevelFilesRejectWithTheDocumentedErrors) {
  const std::vector<ParseExpectation> expectations = {
      {"/truncated_record.delta", "delta.bad_count",
       "header announces 2 records but 1 followed"},
      {"/non_utf8_label.delta", "delta.bad_domain",
       "line 2: domain must be lowercase ACE [a-z0-9.-] with a TLD"},
      {"/bad_mask.delta", "delta.bad_mask", "line 2: mask must be 1..255"},
      {"/unknown_kind.delta", "delta.bad_record",
       "line 2: unknown record kind '?'"},
      {"/trailing_garbage.delta", "delta.bad_record",
       "line 3: record needs exactly 3 fields"},
  };
  for (const ParseExpectation& expected : expectations) {
    const auto parsed = parse_delta(
        read_file(std::string(IDNSCOPE_DELTA_CORPUS_DIR) + expected.name));
    ASSERT_FALSE(parsed.ok()) << expected.name;
    EXPECT_EQ(parsed.error().code, expected.code) << expected.name;
    EXPECT_EQ(parsed.error().message, expected.message) << expected.name;
  }
}

struct ApplyExpectation {
  const char* name;
  const char* code;
  const char* message;
};

TEST(DeltaCorpus, ApplyLevelFilesRejectWithTheSharedBuilderStrings) {
  const std::vector<ApplyExpectation> expectations = {
      {"/out_of_order_day.delta", "delta.bad_day",
       "delta day 2 does not follow day 0"},
      {"/duplicate_registration.delta", "delta.bad_apply",
       "delta day 1 record 1: duplicate registration of alpha.com"},
      {"/expiry_never_registered.delta", "delta.bad_apply",
       "delta day 1 record 0: expiry of never-registered ghost.com"},
      {"/blacklist_non_idn.delta", "delta.bad_apply",
       "delta day 1 record 0: blacklist record for non-idn domain alpha.com"},
      {"/idn_flag_mismatch.delta", "delta.bad_apply",
       "delta day 1 record 0: idn flag mismatch for xn--fresh.com"},
      {"/offset_mask_mismatch.delta", "delta.bad_apply",
       "delta day 1 record 0: blacklist offset mask mismatch for "
       "xn--listed-9ya.com"},
      {"/unknown_tld.delta", "delta.bad_apply",
       "delta day 1 record 0: unknown TLD for fresh-1.net"},
  };
  for (const ApplyExpectation& expected : expectations) {
    const auto parsed = parse_delta(
        read_file(std::string(IDNSCOPE_DELTA_CORPUS_DIR) + expected.name));
    ASSERT_TRUE(parsed.ok()) << expected.name << ": "
                             << parsed.error().message;
    Ecosystem eco = micro_world();
    TimelineState state = TimelineState::from(eco);
    const auto applied = apply_delta(eco, state, parsed.value());
    ASSERT_FALSE(applied.ok()) << expected.name;
    EXPECT_EQ(applied.error().code, expected.code) << expected.name;
    EXPECT_EQ(applied.error().message, expected.message) << expected.name;
  }
}

TEST(DeltaCorpus, DuplicateRegistrationKeepsTheAppliedPrefixOnBothPaths) {
  const auto parsed = parse_delta(read_file(
      std::string(IDNSCOPE_DELTA_CORPUS_DIR) + "/duplicate_registration.delta"));
  ASSERT_TRUE(parsed.ok());
  Ecosystem eco = micro_world();
  core::Study study(eco);
  TimelineState state = TimelineState::from(eco);
  ASSERT_FALSE(apply_delta(eco, state, parsed.value()).ok());
  ASSERT_FALSE(study.apply_delta(parsed.value()).ok());
  // Record 0 (fresh-1.com) was applied before record 1 failed — on both
  // sides; the failed delta does not advance the day on either.
  EXPECT_TRUE(state.domains.at("fresh-1.com").live);
  EXPECT_TRUE(study.is_registered("fresh-1.com"));
  EXPECT_EQ(state.day, 0u);
  EXPECT_EQ(study.day(), 0u);
}

TEST(DeltaCorpus, ValidDayAppliesIdenticallyOnBothPaths) {
  const auto parsed = parse_delta(
      read_file(std::string(IDNSCOPE_DELTA_CORPUS_DIR) + "/valid_day.delta"));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  Ecosystem eco = micro_world();
  core::Study study(eco);
  TimelineState state = TimelineState::from(eco);
  const auto eco_applied = apply_delta(eco, state, parsed.value());
  ASSERT_TRUE(eco_applied.ok()) << eco_applied.error().message;
  const auto study_applied = study.apply_delta(parsed.value());
  ASSERT_TRUE(study_applied.ok()) << study_applied.error().message;
  EXPECT_EQ(eco_applied.value().registrations, 2u);
  EXPECT_EQ(eco_applied.value().expiries, 1u);
  EXPECT_EQ(eco_applied.value().blacklist_on, 1u);
  EXPECT_EQ(eco_applied.value().blacklist_off, 1u);
  EXPECT_EQ(study.day(), 1u);
  EXPECT_EQ(state.day, 1u);

  // The incremental study now equals a from-scratch study of the mutated
  // world, field for field (the replay contract in miniature).
  const core::Study fresh(eco);
  EXPECT_EQ(study.totals().sld_count, fresh.totals().sld_count);
  EXPECT_EQ(study.totals().idn_count, fresh.totals().idn_count);
  EXPECT_EQ(study.totals().blacklist_total, fresh.totals().blacklist_total);
  auto sorted = [](const core::Study& s, std::span<const runtime::DomainId> ids) {
    std::vector<std::string> out = s.resolve(ids);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(sorted(study, study.idns()), sorted(fresh, fresh.idns()));
  EXPECT_EQ(sorted(study, study.malicious_idns()),
            sorted(fresh, fresh.malicious_idns()));
  EXPECT_FALSE(study.is_registered("alpha.com"));
  EXPECT_TRUE(study.is_registered("xn--fresh-2.com"));
  EXPECT_EQ(study.blacklist_mask("xn--fresh-2.com"), 2);
  EXPECT_EQ(study.blacklist_mask("xn--listed-9ya.com"), 0);
}

}  // namespace
}  // namespace idnscope::ecosystem
