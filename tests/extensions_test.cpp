// Tests for the two extensions beyond the paper's measurements:
// the Type-2 (translation) detector and the registry brand-protection gate.
#include <gtest/gtest.h>

#include <set>

#include "idnscope/core/brand_protection.h"
#include "idnscope/core/semantic_type2.h"
#include "idnscope/core/study.h"
#include "idnscope/idna/idna.h"
#include "idnscope/idna/lookalike.h"
#include "idnscope/unicode/utf8.h"

namespace idnscope::core {
namespace {

const ecosystem::Ecosystem& tiny_eco() {
  static const ecosystem::Ecosystem eco =
      ecosystem::generate(ecosystem::Scenario::tiny());
  return eco;
}

const Study& tiny_study() {
  static const Study study(tiny_eco());
  return study;
}

std::string ace(std::string_view unicode_domain) {
  return idna::domain_to_ascii(unicode_domain).value();
}

// ---- Type-2 detector --------------------------------------------------------

TEST(Type2, DetectsTableXExamples) {
  const Type2Detector detector;
  // Table X: 格力空调.net, 北京交通大学.com, 奔驰汽车.com.
  auto gree = detector.match(ace("格力空调.net"));
  ASSERT_TRUE(gree.has_value());
  EXPECT_EQ(gree->brand, "gree.com.cn");
  EXPECT_EQ(gree->translated, "格力");

  auto bjtu = detector.match(ace("北京交通大学.com"));
  ASSERT_TRUE(bjtu.has_value());
  EXPECT_EQ(bjtu->brand, "bjtu.edu.cn");

  auto benz = detector.match(ace("奔驰汽车.com"));
  ASSERT_TRUE(benz.has_value());
  EXPECT_EQ(benz->brand, "mercedes-benz.com");
  EXPECT_EQ(benz->description, "Mercedes-Benz Automobile");
}

TEST(Type2, RequiresTranslatedNameAsSubstring) {
  const Type2Detector detector;
  EXPECT_FALSE(detector.match(ace("在线商城.com")).has_value());
  EXPECT_FALSE(detector.match("plain-ascii.com").has_value());
  EXPECT_FALSE(detector.match(ace("格.com")).has_value());  // partial
  EXPECT_TRUE(detector.match(ace("官方格力维修.com")).has_value());  // infix
}

TEST(Type2, DictionaryCoversTableX) {
  std::set<std::string_view> translated;
  for (const auto& entry : ecosystem::brand_translation_dictionary()) {
    translated.insert(entry.translated);
  }
  EXPECT_TRUE(translated.contains("格力"));
  EXPECT_TRUE(translated.contains("北京交通大学"));
  EXPECT_TRUE(translated.contains("奔驰"));
  EXPECT_GE(translated.size(), 25U);
}

TEST(Type2, FindsAllGeneratorPlants) {
  const Type2Detector detector;
  const auto matches = detector.scan(tiny_study().table(), tiny_study().idns());
  std::set<std::string> matched;
  for (const Type2Match& match : matches) {
    matched.insert(match.domain);
  }
  std::size_t planted = 0;
  for (const auto& [domain, truth] : tiny_eco().truth) {
    if (truth.abuse == ecosystem::AbuseKind::kSemanticT2) {
      ++planted;
      EXPECT_TRUE(matched.contains(domain)) << domain;
    }
  }
  EXPECT_GT(planted, 10U);
}

TEST(Type2, MatchedBrandAgreesWithPlantTarget) {
  const Type2Detector detector;
  for (const Type2Match& match : detector.scan(tiny_study().table(), tiny_study().idns())) {
    auto it = tiny_eco().truth.find(match.domain);
    ASSERT_NE(it, tiny_eco().truth.end());
    if (it->second.abuse == ecosystem::AbuseKind::kSemanticT2) {
      EXPECT_EQ(match.brand, it->second.target_brand) << match.domain;
    }
  }
}

TEST(Type2, CustomDictionary) {
  const ecosystem::BrandTranslation entries[] = {
      {"测试", "test.example", "Test Brand"}};
  const Type2Detector detector{{entries, 1}};
  auto hit = detector.match(ace("测试网站.com"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->brand, "test.example");
  EXPECT_FALSE(detector.match(ace("格力空调.net")).has_value());
}

// ---- brand protection gate --------------------------------------------------

const BrandProtectionGate& gate() {
  static const BrandProtectionGate instance(ecosystem::alexa_top1k());
  return instance;
}

TEST(BrandProtection, AcceptsLegitimateIdn) {
  const auto decision = gate().check("müller-bäckerei", "com");
  EXPECT_EQ(decision.verdict, RegistrationVerdict::kAccept);
  EXPECT_EQ(gate().check("中文在线", "com").verdict,
            RegistrationVerdict::kAccept);
}

TEST(BrandProtection, RejectsHomographRequest) {
  // аpple (Cyrillic а) — the request a registrar approved in the paper's
  // registration experiment.
  const auto decision = gate().check("аpple", "com");
  EXPECT_EQ(decision.verdict, RegistrationVerdict::kRejectVisual);
  EXPECT_EQ(decision.matched_brand, "apple.com");
  EXPECT_DOUBLE_EQ(decision.ssim, 1.0);
}

TEST(BrandProtection, RejectsSemanticRequest) {
  const auto decision = gate().check("icloud登录", "com");
  EXPECT_EQ(decision.verdict, RegistrationVerdict::kRejectSemantic);
  EXPECT_EQ(decision.matched_brand, "icloud.com");
  EXPECT_NE(decision.detail.find("登录"), std::string::npos);
}

TEST(BrandProtection, RejectsInvalidLabel) {
  EXPECT_EQ(gate().check("bad label!", "com").verdict,
            RegistrationVerdict::kRejectInvalid);
  EXPECT_EQ(gate().check("\xC3", "com").verdict,
            RegistrationVerdict::kRejectInvalid);
}

TEST(BrandProtection, BrandOwnerWhitelisted) {
  const auto blocked = gate().check("gooģle", "com", "evil@attacker.net");
  EXPECT_EQ(blocked.verdict, RegistrationVerdict::kRejectVisual);
  const auto allowed = gate().check("gooģle", "com", "domains@google.com");
  EXPECT_EQ(allowed.verdict, RegistrationVerdict::kAccept);
}

TEST(BrandProtection, TldMattersForSemanticRule) {
  EXPECT_EQ(gate().check("apple邮箱", "com").verdict,
            RegistrationVerdict::kRejectSemantic);
  EXPECT_EQ(gate().check("apple邮箱", "net").verdict,
            RegistrationVerdict::kAccept);
}

TEST(BrandProtection, AuditCatchesPlantedAbuse) {
  // Counterfactual: had the gate been deployed, how much of the planted
  // abuse would never have been registered?
  std::vector<std::string> abusive;
  std::vector<std::string> benign;
  for (const auto& [domain, truth] : tiny_eco().truth) {
    if (!truth.is_idn) {
      continue;
    }
    if (truth.abuse == ecosystem::AbuseKind::kHomograph ||
        truth.abuse == ecosystem::AbuseKind::kSemanticT1) {
      abusive.push_back(domain);
    } else if (truth.abuse == ecosystem::AbuseKind::kNone && benign.size() < 300) {
      benign.push_back(domain);
    }
  }
  const auto abusive_audit = gate().audit(abusive);
  EXPECT_GE(static_cast<double>(abusive_audit.rejected()) /
                static_cast<double>(abusive_audit.total),
            0.90);
  const auto benign_audit = gate().audit(benign);
  // Some benign English-bucket IDNs legitimately look like brands; the
  // false-positive rate must still be low.
  EXPECT_LE(static_cast<double>(benign_audit.rejected()) /
                static_cast<double>(benign_audit.total),
            0.05);
}

}  // namespace
}  // namespace idnscope::core
