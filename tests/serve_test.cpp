// Serving-layer tests: the StudySnapshot classify contract (field-identical
// to the batch detectors for every fast-mode ecosystem domain), the
// atomic-swap publisher (readers observe only whole snapshots), the
// request-batching QueryEngine (sizing, ordering, stale-id re-resolution,
// verdict memo transparency) and the seeded load generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "idnscope/core/homograph.h"
#include "idnscope/core/semantic.h"
#include "idnscope/core/semantic_type2.h"
#include "idnscope/ecosystem/brands.h"
#include "idnscope/ecosystem/ecosystem.h"
#include "idnscope/ecosystem/scenario.h"
#include "idnscope/ecosystem/timeline.h"
#include "idnscope/obs/metrics.h"
#include "idnscope/serve/engine.h"
#include "idnscope/serve/loadgen.h"
#include "idnscope/serve/publisher.h"
#include "idnscope/serve/snapshot.h"

namespace idnscope {
namespace {

// The exact world IDNSCOPE_BENCH_FAST=1 benches run (bench_common.h
// bench_scenario): "classify() == batch verdict for every fast-mode
// ecosystem domain" is defined against this population.
ecosystem::Scenario fast_scenario() {
  ecosystem::Scenario scenario = ecosystem::Scenario::paper2017();
  scenario.bulk_scale = 1000;
  scenario.abuse_scale = 50;
  scenario.generate_filler = false;
  return scenario;
}

// One shared fast-mode world for the whole file: the snapshot build and the
// detector brand tables are the expensive parts, the assertions are cheap.
struct FastWorld {
  ecosystem::Ecosystem eco;
  serve::StudySnapshot snapshot;
  FastWorld() : eco(ecosystem::generate(fast_scenario())), snapshot(eco) {}
};

const FastWorld& fast_world() {
  static const FastWorld* world = new FastWorld;
  return *world;
}

void expect_finding_eq(const serve::Finding& actual,
                       const serve::Finding& expected,
                       const std::string& domain, const char* detector) {
  EXPECT_EQ(actual.flagged, expected.flagged) << detector << " " << domain;
  EXPECT_EQ(actual.rule, expected.rule) << detector << " " << domain;
  EXPECT_EQ(actual.brand, expected.brand) << detector << " " << domain;
  EXPECT_EQ(actual.score_micros, expected.score_micros)
      << detector << " " << domain;
}

void expect_verdict_eq(const serve::Verdict& a, const serve::Verdict& b,
                       const std::string& domain) {
  EXPECT_EQ(a.domain, b.domain) << domain;
  EXPECT_EQ(a.domain_id, b.domain_id) << domain;
  EXPECT_EQ(a.generation, b.generation) << domain;
  EXPECT_EQ(a.parsed, b.parsed) << domain;
  EXPECT_EQ(a.known, b.known) << domain;
  EXPECT_EQ(a.registered, b.registered) << domain;
  EXPECT_EQ(a.idn, b.idn) << domain;
  EXPECT_EQ(a.blacklist_mask, b.blacklist_mask) << domain;
  expect_finding_eq(a.homograph, b.homograph, domain, "homograph");
  expect_finding_eq(a.semantic_t1, b.semantic_t1, domain, "semantic_t1");
  expect_finding_eq(a.semantic_t2, b.semantic_t2, domain, "semantic_t2");
}

// The reference detectors, constructed exactly as core::build_markdown_report
// constructs them — that construction *defines* "the batch Study verdict".
struct BatchReference {
  core::HomographDetector homograph{ecosystem::alexa_top1k()};
  core::SemanticDetector semantic{ecosystem::alexa_top1k()};
  core::Type2Detector type2;

  serve::Finding homograph_finding(const std::string& domain) const {
    serve::Finding finding;
    if (const auto match = homograph.best_match(domain)) {
      finding.flagged = true;
      finding.rule = match->rule;
      finding.brand = match->brand;
      finding.score_micros = obs::to_micros(match->ssim);
    }
    return finding;
  }
  serve::Finding semantic_finding(const std::string& domain) const {
    serve::Finding finding;
    if (const auto hit = semantic.match(domain)) {
      finding.flagged = true;
      finding.rule = "ascii_strip_brand_match";
      finding.brand = hit->brand;
      finding.score_micros = obs::to_micros(1.0);
    }
    return finding;
  }
  serve::Finding type2_finding(const std::string& domain) const {
    serve::Finding finding;
    if (const auto hit = type2.match(domain)) {
      finding.flagged = true;
      finding.rule = "translation_substring";
      finding.brand = hit->brand;
      finding.score_micros = obs::to_micros(1.0);
    }
    return finding;
  }
};

// --- snapshot: the classify contract ---------------------------------------

TEST(ServeSnapshot, ClassifyMatchesBatchVerdictForEveryFastModeDomain) {
  const FastWorld& world = fast_world();
  const BatchReference batch;
  const runtime::DomainTable& table = world.snapshot.study().table();
  std::uint64_t flagged = 0;
  for (std::uint32_t id = 0; id < table.size(); ++id) {
    const std::string domain(table.str(id));
    const serve::Verdict verdict = world.snapshot.classify(domain);
    ASSERT_TRUE(verdict.parsed) << domain;
    EXPECT_TRUE(verdict.known) << domain;
    EXPECT_EQ(verdict.domain_id, static_cast<std::int64_t>(id)) << domain;
    EXPECT_EQ(verdict.domain, domain);
    EXPECT_EQ(verdict.idn, table.is_idn(id)) << domain;
    EXPECT_EQ(verdict.registered, table.is_registered(id)) << domain;
    EXPECT_EQ(verdict.blacklist_mask, table.blacklist_mask(id)) << domain;
    expect_finding_eq(verdict.homograph, batch.homograph_finding(domain),
                      domain, "homograph");
    expect_finding_eq(verdict.semantic_t1, batch.semantic_finding(domain),
                      domain, "semantic_t1");
    expect_finding_eq(verdict.semantic_t2, batch.type2_finding(domain),
                      domain, "semantic_t2");
    flagged += verdict.flagged() ? 1 : 0;
  }
  // The world must actually exercise the detectors, or the parity above
  // proves nothing.
  EXPECT_GT(flagged, 0U);
  EXPECT_GT(table.size(), 1000U);
}

TEST(ServeSnapshot, ClassifyMatchesBatchVerdictForUnregisteredDomains) {
  // The miss path (domain not in the snapshot's table) still runs the full
  // detector stack — an attacker's not-yet-registered lookalike must flag.
  const FastWorld& world = fast_world();
  const BatchReference batch;
  const serve::LoadGenerator loadgen(world.snapshot, 7);
  ASSERT_GT(loadgen.miss_pool_size(), 0U);
  std::size_t checked = 0;
  std::size_t flagged = 0;
  for (const std::string& domain : loadgen.misses()) {
    if (++checked > 64) {
      break;
    }
    const serve::Verdict verdict = world.snapshot.classify(domain);
    ASSERT_TRUE(verdict.parsed) << domain;
    EXPECT_FALSE(verdict.known) << domain;
    EXPECT_EQ(verdict.domain_id, -1) << domain;
    EXPECT_FALSE(verdict.registered) << domain;
    EXPECT_EQ(verdict.blacklist_mask, 0) << domain;
    expect_finding_eq(verdict.homograph, batch.homograph_finding(domain),
                      domain, "homograph");
    expect_finding_eq(verdict.semantic_t1, batch.semantic_finding(domain),
                      domain, "semantic_t1");
    expect_finding_eq(verdict.semantic_t2, batch.type2_finding(domain),
                      domain, "semantic_t2");
    flagged += verdict.flagged() ? 1 : 0;
  }
  // Brand lookalikes lead the miss pool, so some of them must flag.
  EXPECT_GT(flagged, 0U);
}

TEST(ServeSnapshot, ClassifyInternedMatchesClassifyByName) {
  // The zero-copy path must be observationally identical to the string
  // path for every IDN in the snapshot (the population interned queries
  // are drawn from).
  const FastWorld& world = fast_world();
  const runtime::DomainTable& table = world.snapshot.study().table();
  for (const runtime::DomainId id : world.snapshot.study().idns()) {
    const std::string domain(table.str(id));
    expect_verdict_eq(world.snapshot.classify_interned(id),
                      world.snapshot.classify(domain), domain);
  }
}

TEST(ServeSnapshot, UnparseableInputYieldsStructuredFailure) {
  const FastWorld& world = fast_world();
  for (const char* bad : {"", "exa mple.com", "\xff\xfe.com"}) {
    const serve::Verdict verdict = world.snapshot.classify(bad);
    EXPECT_FALSE(verdict.parsed) << bad;
    EXPECT_FALSE(verdict.known) << bad;
    EXPECT_FALSE(verdict.flagged()) << bad;
    EXPECT_EQ(verdict.homograph.rule, "invalid_domain") << bad;
    EXPECT_EQ(verdict.semantic_t1.rule, "invalid_domain") << bad;
    EXPECT_EQ(verdict.semantic_t2.rule, "invalid_domain") << bad;
  }
}

TEST(ServeSnapshot, BytesAccountsTheWorkingSet) {
  const FastWorld& world = fast_world();
  // Pure size math over real components: the budget gate rides on this.
  EXPECT_GT(world.snapshot.bytes(),
            world.snapshot.study().table().memory_bytes());
}

// --- publisher: atomic snapshot swap ---------------------------------------

TEST(ServePublisher, ReadersObserveOnlyWholeSnapshots) {
  // Two generations of two *different* worlds; a marker domain known only
  // to generation 1.  Readers hammer classify() through the publisher
  // while the writer swaps — every verdict must be internally consistent
  // with exactly one generation (generation stamp agrees with the snapshot
  // that answered, known-ness agrees with that generation's table).
  const auto eco1 = ecosystem::generate(ecosystem::Scenario::tiny());
  ecosystem::Scenario other = ecosystem::Scenario::tiny();
  other.seed += 1;
  const auto eco2 = ecosystem::generate(other);

  serve::SnapshotOptions gen2_options;
  gen2_options.generation = 2;
  const auto snap1 = std::make_shared<const serve::StudySnapshot>(eco1);
  const auto snap2 =
      std::make_shared<const serve::StudySnapshot>(eco2, gen2_options);

  const runtime::DomainTable& table1 = snap1->study().table();
  std::string marker;
  for (std::uint32_t id = 0; id < table1.size(); ++id) {
    const std::string domain(table1.str(id));
    if (!snap2->study().table().contains(domain)) {
      marker = domain;
      break;
    }
  }
  ASSERT_FALSE(marker.empty()) << "worlds are identical; marker impossible";

  serve::SnapshotPublisher publisher(snap1);
  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> saw_gen2{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!start.load()) {
      }
      for (int i = 0; i < 500; ++i) {
        const auto snapshot = publisher.current();
        const serve::Verdict verdict = snapshot->classify(marker);
        const bool whole =
            verdict.generation == snapshot->generation() &&
            verdict.known == (verdict.generation == 1);
        if (!whole) {
          torn.fetch_add(1);
        }
        if (verdict.generation == 2) {
          saw_gen2.fetch_add(1);
        }
      }
    });
  }
  start.store(true);
  publisher.publish(snap2);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(torn.load(), 0U);
  // After the swap the publisher serves only generation 2.
  EXPECT_EQ(publisher.current()->generation(), 2U);
  EXPECT_FALSE(publisher.current()->classify(marker).known);
  (void)saw_gen2;  // how many reads landed post-swap is timing, not contract
}

// --- engine: batching, staleness, memo -------------------------------------

TEST(ServeEngine, BatchesAreSizedOrderedAndFlushDrains) {
  const FastWorld& world = fast_world();
  serve::SnapshotPublisher publisher(
      std::shared_ptr<const serve::StudySnapshot>(&world.snapshot,
                                                  [](const auto*) {}));
  const runtime::DomainTable& table = world.snapshot.study().table();
  std::vector<std::size_t> batch_sizes;
  std::vector<std::string> order;
  serve::EngineOptions options;
  options.batch_size = 4;
  options.threads = 2;
  serve::QueryEngine engine(
      publisher, options,
      [&](std::span<const serve::Verdict> verdicts, double) {
        batch_sizes.push_back(verdicts.size());
        for (const serve::Verdict& verdict : verdicts) {
          order.push_back(verdict.domain);
        }
      });
  std::vector<std::string> submitted;
  for (std::uint32_t id = 0; id < 10; ++id) {
    submitted.emplace_back(table.str(id));
    engine.submit(serve::Query{submitted.back()});
  }
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4}));
  engine.flush();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 2}));
  engine.flush();  // empty flush is a no-op
  EXPECT_EQ(engine.queries(), 10U);
  EXPECT_EQ(engine.batches(), 3U);
  EXPECT_EQ(order, submitted);  // verdicts ride in submission order
}

TEST(ServeEngine, StaleInternedQueriesReResolveThroughText) {
  const FastWorld& world = fast_world();
  serve::SnapshotPublisher publisher(
      std::shared_ptr<const serve::StudySnapshot>(&world.snapshot,
                                                  [](const auto*) {}));
  const runtime::DomainId id = world.snapshot.study().idns().front();
  const std::string domain(world.snapshot.study().table().str(id));
  const obs::Counter misses =
      obs::Registry::global().counter("serve.engine.generation_misses");
  const std::uint64_t misses_before = misses.value();
  std::vector<serve::Verdict> seen;
  serve::QueryEngine engine(
      publisher, serve::EngineOptions{},
      [&](std::span<const serve::Verdict> verdicts, double) {
        seen.assign(verdicts.begin(), verdicts.end());
      });
  // An id minted by a previous generation: the engine must not trust it.
  serve::Query stale;
  stale.text = domain;
  stale.id = id;
  stale.generation = 999;
  engine.submit(std::move(stale));
  engine.flush();
  ASSERT_EQ(seen.size(), 1U);
  expect_verdict_eq(seen[0], world.snapshot.classify(domain), domain);
  EXPECT_EQ(misses.value(), misses_before + 1);
}

TEST(ServeEngine, VerdictMemoIsTransparentAndCountsHits) {
  // cache_verdicts on/off must produce identical verdict streams — the
  // memo is an optimization, never an observable behavior change — and
  // hits + misses must partition the query count.
  const FastWorld& world = fast_world();
  serve::SnapshotPublisher publisher(
      std::shared_ptr<const serve::StudySnapshot>(&world.snapshot,
                                                  [](const auto*) {}));
  constexpr std::size_t kQueries = 512;
  serve::LoadGenerator gen_a(world.snapshot, 42);
  serve::LoadGenerator gen_b(world.snapshot, 42);  // identical stream

  const obs::Counter hits =
      obs::Registry::global().counter("serve.engine.cache_hits");
  const obs::Counter misses =
      obs::Registry::global().counter("serve.engine.cache_misses");

  const auto run = [&](serve::LoadGenerator& loadgen, bool cache) {
    std::vector<serve::Verdict> verdicts;
    serve::EngineOptions options;
    options.batch_size = 64;
    options.cache_verdicts = cache;
    serve::QueryEngine engine(
        publisher, options,
        [&](std::span<const serve::Verdict> batch, double) {
          verdicts.insert(verdicts.end(), batch.begin(), batch.end());
        });
    for (std::size_t i = 0; i < kQueries; ++i) {
      engine.submit(loadgen.next());
    }
    engine.flush();
    return verdicts;
  };

  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();
  const std::vector<serve::Verdict> cached = run(gen_a, true);
  const std::uint64_t hit_delta = hits.value() - hits_before;
  const std::uint64_t miss_delta = misses.value() - misses_before;
  const std::vector<serve::Verdict> uncached = run(gen_b, false);

  ASSERT_EQ(cached.size(), kQueries);
  ASSERT_EQ(uncached.size(), kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    expect_verdict_eq(cached[i], uncached[i], cached[i].domain);
  }
  EXPECT_EQ(hit_delta + miss_delta, kQueries);
  // 512 draws from a few thousand subjects must repeat at least once.
  EXPECT_GT(hit_delta, 0U);
}

// --- incremental advance (DESIGN.md §11) ------------------------------------

// A day-0 snapshot and its incrementally-advanced day-1 successor, built
// once: clone the published study, apply the day's delta with the
// snapshot's own detector bundle, adopt the result as generation 2.
struct AdvanceWorld {
  ecosystem::Ecosystem eco;
  ecosystem::DayDelta delta;
  std::shared_ptr<const serve::StudySnapshot> prev;
  std::shared_ptr<const serve::StudySnapshot> next;
  std::string registered_idn;  // day-1 registration, unknown to gen 1
  std::string expired;         // live at day 0, expired by the delta
  std::string untouched;       // in both generations, no delta record

  AdvanceWorld() : eco(ecosystem::generate(ecosystem::Scenario::tiny())) {
    ecosystem::Timeline timeline(eco);
    prev = std::make_shared<const serve::StudySnapshot>(eco);
    delta = timeline.next();
    for (const auto& record : delta.records) {
      if (record.kind == ecosystem::DeltaKind::kRegister && record.is_idn &&
          registered_idn.empty()) {
        registered_idn = record.domain;
      }
      if (record.kind == ecosystem::DeltaKind::kExpire && expired.empty()) {
        expired = record.domain;
      }
    }
    for (const runtime::DomainId id : prev->study().idns()) {
      const std::string domain(prev->study().table().str(id));
      const bool touched =
          std::any_of(delta.records.begin(), delta.records.end(),
                      [&](const auto& r) { return r.domain == domain; });
      if (!touched) {
        untouched = domain;
        break;
      }
    }
    // Eco first (the WHOIS join reads eco.whois), then the cloned study.
    ecosystem::TimelineState state = ecosystem::TimelineState::from(eco);
    if (!ecosystem::apply_delta(eco, state, delta).ok()) {
      std::abort();
    }
    core::Study advanced = prev->study().clone();
    const core::DeltaDetectors detectors = prev->detectors();
    if (!advanced.apply_delta(delta, &detectors).ok()) {
      std::abort();
    }
    next = std::make_shared<const serve::StudySnapshot>(
        *prev, std::move(advanced), 2);
  }
};

const AdvanceWorld& advance_world() {
  static const AdvanceWorld* world = new AdvanceWorld;
  return *world;
}

TEST(ServeSnapshot, AdvanceBumpsGenerationAndServesThePostDeltaWorld) {
  const AdvanceWorld& world = advance_world();
  ASSERT_FALSE(world.registered_idn.empty());
  ASSERT_FALSE(world.expired.empty());
  ASSERT_FALSE(world.untouched.empty());
  EXPECT_EQ(world.prev->generation(), 1U);
  EXPECT_EQ(world.next->generation(), 2U);
  EXPECT_EQ(world.next->study().day(), 1U);

  // The day-1 registration exists only behind the new generation stamp.
  const serve::Verdict before = world.prev->classify(world.registered_idn);
  EXPECT_EQ(before.generation, 1U);
  EXPECT_FALSE(before.known);
  const serve::Verdict after = world.next->classify(world.registered_idn);
  EXPECT_EQ(after.generation, 2U);
  EXPECT_TRUE(after.known);
  EXPECT_TRUE(after.registered);
  EXPECT_TRUE(after.idn);

  // The expired name stays interned but drops its registered bit.
  EXPECT_TRUE(world.prev->classify(world.expired).registered);
  const serve::Verdict gone = world.next->classify(world.expired);
  EXPECT_TRUE(gone.known);
  EXPECT_FALSE(gone.registered);

  // An untouched domain answers identically apart from the stamp.
  const serve::Verdict a = world.prev->classify(world.untouched);
  const serve::Verdict b = world.next->classify(world.untouched);
  EXPECT_EQ(a.generation, 1U);
  EXPECT_EQ(b.generation, 2U);
  EXPECT_EQ(a.known, b.known);
  EXPECT_EQ(a.registered, b.registered);
  EXPECT_EQ(a.idn, b.idn);
  EXPECT_EQ(a.blacklist_mask, b.blacklist_mask);
  expect_finding_eq(a.homograph, b.homograph, world.untouched, "homograph");
  expect_finding_eq(a.semantic_t1, b.semantic_t1, world.untouched,
                    "semantic_t1");
  expect_finding_eq(a.semantic_t2, b.semantic_t2, world.untouched,
                    "semantic_t2");

  // The shared-detector economy: both generations serve from the same
  // brand tables (the advance constructor's reference-count contract).
  EXPECT_EQ(world.prev->detectors().homograph,
            world.next->detectors().homograph);
}

TEST(ServeEngine, MemoNeverServesPreDeltaVerdictsForTouchedDomains) {
  const AdvanceWorld& world = advance_world();
  serve::SnapshotPublisher publisher(world.prev);
  std::vector<serve::Verdict> seen;
  serve::EngineOptions options;
  options.cache_verdicts = true;
  serve::QueryEngine engine(
      publisher, options,
      [&](std::span<const serve::Verdict> verdicts, double) {
        seen.insert(seen.end(), verdicts.begin(), verdicts.end());
      });

  // Warm the memo against generation 1: the future registration resolves
  // unknown, the future expiry still registered.
  engine.submit(serve::Query{world.registered_idn});
  engine.submit(serve::Query{world.expired});
  engine.flush();
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0].generation, 1U);
  EXPECT_FALSE(seen[0].known);
  EXPECT_TRUE(seen[1].registered);

  // Publish the incrementally-advanced generation and re-ask: the memo is
  // keyed by generation, so a touched domain can never be answered with a
  // cached pre-delta verdict.
  publisher.publish(world.next);
  seen.clear();
  engine.submit(serve::Query{world.registered_idn});
  engine.submit(serve::Query{world.expired});
  engine.flush();
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0].generation, 2U);
  EXPECT_TRUE(seen[0].known);
  EXPECT_TRUE(seen[0].registered);
  EXPECT_EQ(seen[1].generation, 2U);
  EXPECT_FALSE(seen[1].registered);
}

// --- load generator ---------------------------------------------------------

TEST(ServeLoadGen, SameSeedSameStreamAndMissesAreAbsent) {
  const FastWorld& world = fast_world();
  serve::LoadGenerator a(world.snapshot, 20170921);
  serve::LoadGenerator b(world.snapshot, 20170921);
  bool saw_interned = false;
  bool saw_text = false;
  for (int i = 0; i < 500; ++i) {
    const serve::Query qa = a.next();
    const serve::Query qb = b.next();
    EXPECT_EQ(qa.text, qb.text);
    EXPECT_EQ(qa.id, qb.id);
    EXPECT_EQ(qa.generation, qb.generation);
    saw_interned = saw_interned || qa.id != runtime::kInvalidDomainId;
    saw_text = saw_text || !qa.text.empty();
  }
  EXPECT_TRUE(saw_interned);  // the mix covers the zero-copy path...
  EXPECT_TRUE(saw_text);      // ...and the string path
  ASSERT_GT(a.miss_pool_size(), 0U);
  for (const std::string& miss : a.misses()) {
    EXPECT_FALSE(world.snapshot.study().table().contains(miss)) << miss;
  }
}

}  // namespace
}  // namespace idnscope
