// Observability layer tests: registry merge determinism across thread
// counts, span nesting, snapshot serialization round-trip, and the
// count-effort-exactly-once contract the detectors rely on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "idnscope/core/homograph.h"
#include "idnscope/ecosystem/brands.h"
#include "idnscope/obs/export.h"
#include "idnscope/obs/metrics.h"
#include "idnscope/obs/trace.h"
#include "idnscope/runtime/domain_table.h"
#include "idnscope/runtime/parallel.h"
#include "idnscope/unicode/confusables.h"

namespace idnscope {
namespace {

// The registry is process-global and shared by every test in this binary;
// each test that measures absolute values starts from a clean slate.
void reset_all() {
  obs::Registry::global().reset();
  obs::reset_trace();
}

TEST(Metrics, ToMicrosFixedPoint) {
  EXPECT_EQ(obs::to_micros(0.0), 0U);
  EXPECT_EQ(obs::to_micros(1.0), 1000000U);
  EXPECT_EQ(obs::to_micros(0.95), 950000U);
  EXPECT_EQ(obs::to_micros(-3.5), 0U);      // non-negative by contract
  EXPECT_EQ(obs::to_micros(4e-7), 0U);      // round to nearest
  EXPECT_EQ(obs::to_micros(6e-7), 1U);
}

TEST(Metrics, CounterMergeIdenticalAt1_2_8Threads) {
  const obs::Counter counter =
      obs::Registry::global().counter("test.obs.counter_merge");
  for (unsigned threads : {1U, 2U, 8U}) {
    reset_all();
    runtime::parallel_for(10007, threads,
                          [&](std::size_t) { counter.add(1); });
    EXPECT_EQ(counter.value(), 10007U) << "threads=" << threads;
  }
}

TEST(Metrics, HistogramMergeIdenticalAt1_2_8Threads) {
  const obs::Histogram hist = obs::Registry::global().histogram(
      "test.obs.hist_merge", {0.25, 0.5, 0.75});
  std::vector<obs::HistogramSnapshot> runs;
  for (unsigned threads : {1U, 2U, 8U}) {
    reset_all();
    runtime::parallel_for(4001, threads, [&](std::size_t i) {
      hist.observe(static_cast<double>(i) / 4000.0);
    });
    runs.push_back(obs::Registry::global().snapshot().histograms.at(
        "test.obs.hist_merge"));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  EXPECT_EQ(runs[0].count, 4001U);
}

TEST(Metrics, HistogramBucketSemantics) {
  reset_all();
  const obs::Histogram hist =
      obs::Registry::global().histogram("test.obs.hist_buckets", {1.0, 2.0});
  ASSERT_EQ(hist.buckets(), 3U);  // (-inf,1), [1,2), [2,+inf)
  hist.observe(0.5);
  hist.observe(1.0);  // boundary lands in [1,2)
  hist.observe(1.5);
  hist.observe(2.0);  // boundary lands in [2,+inf)
  EXPECT_EQ(hist.bucket_count(0), 1U);
  EXPECT_EQ(hist.bucket_count(1), 2U);
  EXPECT_EQ(hist.bucket_count(2), 1U);
  EXPECT_EQ(hist.count(), 4U);
  EXPECT_EQ(hist.sum_micros(), obs::to_micros(0.5) + obs::to_micros(1.0) +
                                   obs::to_micros(1.5) + obs::to_micros(2.0));
}

TEST(Metrics, RegistrationIsIdempotent) {
  reset_all();
  const obs::Counter a = obs::Registry::global().counter("test.obs.same");
  const obs::Counter b = obs::Registry::global().counter("test.obs.same");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5U);  // both handles share one cell
  EXPECT_EQ(b.value(), 5U);

  const obs::Histogram first =
      obs::Registry::global().histogram("test.obs.same_hist", {1.0, 2.0});
  const obs::Histogram second =
      obs::Registry::global().histogram("test.obs.same_hist", {9.0});
  EXPECT_EQ(second.bounds(), first.bounds());  // first registration wins
  EXPECT_EQ(second.buckets(), 3U);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandlesValid) {
  const obs::Counter counter =
      obs::Registry::global().counter("test.obs.reset");
  counter.add(7);
  obs::Registry::global().reset();
  EXPECT_EQ(counter.value(), 0U);
  counter.add(1);  // handle still points at a live cell
  EXPECT_EQ(counter.value(), 1U);
}

TEST(Metrics, GaugeLastWriteWins) {
  reset_all();
  const obs::Gauge gauge = obs::Registry::global().gauge("test.obs.gauge");
  gauge.set(42);
  gauge.set(-17);
  EXPECT_EQ(gauge.value(), -17);
  EXPECT_EQ(obs::Registry::global().snapshot().gauges.at("test.obs.gauge"),
            -17);
}

TEST(Metrics, GenerationBumpsOnResetAndRenotesStaticGauges) {
  (void)unicode::all_homoglyphs();  // ensure the simlist gauge is registered
  const std::uint64_t before = obs::Registry::global().generation();
  obs::Registry::global().reset();
  EXPECT_EQ(obs::Registry::global().generation(), before + 1);
  // reset() zeroes the lazily-noted working-set gauge like any other...
  EXPECT_EQ(obs::Registry::global()
                .snapshot()
                .gauges.at("unicode.confusables.simlist_bytes"),
            0);
  // ...but the next touch of the hot path compares generations and notes
  // it again, so a reset between runs never leaves it stale at zero.
  (void)unicode::all_homoglyphs();
  EXPECT_GT(obs::Registry::global()
                .snapshot()
                .gauges.at("unicode.confusables.simlist_bytes"),
            0);
}

TEST(Export, SnapshotJsonRoundTrip) {
  reset_all();
  obs::Registry::global().counter("test.obs.rt_counter").add(123);
  obs::Registry::global().gauge("test.obs.rt_gauge").set(-456);
  const obs::Histogram hist =
      obs::Registry::global().histogram("test.obs.rt_hist", {0.5, 0.9});
  hist.observe(0.25);
  hist.observe(0.95);

  const obs::Snapshot original = obs::Registry::global().snapshot();
  const std::string json = obs::snapshot_to_json(original);
  const auto parsed = obs::parse_snapshot(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
  // Canonical form: re-serializing the parse gives identical bytes.
  EXPECT_EQ(obs::snapshot_to_json(*parsed), json);
}

TEST(Export, EmptyRegistrySerializesAndParses) {
  const obs::Snapshot empty;
  const std::string json = obs::snapshot_to_json(empty);
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  const auto parsed = obs::parse_snapshot(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, empty);
}

TEST(Export, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_snapshot("").has_value());
  EXPECT_FALSE(obs::parse_snapshot("{}").has_value());
  EXPECT_FALSE(obs::parse_snapshot("not json at all").has_value());
  EXPECT_FALSE(
      obs::parse_snapshot("{\"counters\":{\"a\":1},\"gauges\":{}}").has_value());
  // Trailing garbage after a valid snapshot is an error, not ignored.
  EXPECT_FALSE(obs::parse_snapshot(
                   "{\"counters\":{},\"gauges\":{},\"histograms\":{}} ")
                   .has_value());
}

TEST(Trace, SpansNestByPath) {
  reset_all();
  EXPECT_EQ(obs::current_trace_path(), "");
  {
    const obs::StageTimer outer("outer");
    EXPECT_EQ(obs::current_trace_path(), "outer");
    {
      const obs::StageTimer inner("inner");
      EXPECT_EQ(obs::current_trace_path(), "outer/inner");
    }
    EXPECT_EQ(obs::current_trace_path(), "outer");
  }
  EXPECT_EQ(obs::current_trace_path(), "");
  const auto table = obs::trace_table();
  ASSERT_TRUE(table.contains("outer"));
  ASSERT_TRUE(table.contains("outer/inner"));
  EXPECT_EQ(table.at("outer").calls, 1U);
  EXPECT_EQ(table.at("outer/inner").calls, 1U);
}

TEST(Trace, ThreadTraceRootSeedsWorkerPath) {
  reset_all();
  {
    const obs::StageTimer stage("stage");
    const std::string parent = obs::current_trace_path();
    std::thread worker([&] {
      const obs::ThreadTraceRoot root(parent);
      const obs::StageTimer busy("worker");
      EXPECT_EQ(obs::current_trace_path(), "stage/worker");
    });
    worker.join();
  }
  EXPECT_EQ(obs::trace_table().at("stage/worker").calls, 1U);
}

TEST(Trace, ExecutorAttributesWorkerBusyTimeToCallingStage) {
  reset_all();
  {
    const obs::StageTimer stage("teststage");
    runtime::parallel_for(1000, 2, [](std::size_t) {});
  }
  const auto table = obs::trace_table();
  ASSERT_TRUE(table.contains("teststage/runtime.parallel.worker"));
  // One span per worker; the count scales with the worker count, which is
  // exactly why this lives on the trace plane, not in the snapshot file.
  EXPECT_GE(table.at("teststage/runtime.parallel.worker").calls, 1U);
}

// --- trace-event timeline (Chrome trace export) ----------------------------

TEST(TraceEvents, RecordedInCloseOrderWithFullPaths) {
  reset_all();
  {
    const obs::StageTimer outer("ev_outer");
    const obs::StageTimer inner("ev_inner");
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2U);
  // Spans log at close, so the inner span lands first.
  EXPECT_EQ(events[0].path, "ev_outer/ev_inner");
  EXPECT_EQ(events[1].path, "ev_outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].dur_us, events[1].dur_us);
  EXPECT_EQ(obs::trace_events_dropped(), 0U);
}

TEST(TraceEvents, WorkerThreadsGetDistinctTimelineLanes) {
  reset_all();
  {
    const obs::StageTimer stage("ev_stage");
    const std::string parent = obs::current_trace_path();
    std::thread worker([&] {
      const obs::ThreadTraceRoot root(parent);
      const obs::StageTimer busy("ev_worker");
    });
    worker.join();
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].path, "ev_stage/ev_worker");
  EXPECT_EQ(events[1].path, "ev_stage");
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceEvents, ExportRoundTripsThroughChromeTraceJson) {
  reset_all();
  {
    const obs::StageTimer outer("rt_outer");
    { const obs::StageTimer inner("rt_inner"); }
    const std::string parent = obs::current_trace_path();
    std::thread worker([&] {
      const obs::ThreadTraceRoot root(parent);
      const obs::StageTimer busy("rt_worker");
    });
    worker.join();
  }
  const auto original = obs::trace_events();
  const std::string json = obs::trace_events_to_json();
  const auto parsed = obs::parse_trace_events(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].path, original[i].path) << "event " << i;
    EXPECT_EQ((*parsed)[i].tid, original[i].tid) << "event " << i;
    EXPECT_EQ((*parsed)[i].start_us, original[i].start_us) << "event " << i;
    EXPECT_EQ((*parsed)[i].dur_us, original[i].dur_us) << "event " << i;
  }
}

TEST(TraceEvents, ExportIsWellFormedChromeTrace) {
  reset_all();
  { const obs::StageTimer stage("wf_stage"); }
  const std::string json = obs::trace_events_to_json();
  // Object-wrapped JSON Array Format, as chrome://tracing and Perfetto
  // load it: metadata names the process and lanes, spans are complete
  // ("X") events, peak RSS rides along as one counter ("C") event.
  EXPECT_TRUE(json.starts_with("{\"displayTimeUnit\":\"ms\""));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wf_stage\",\"cat\":\"idnscope\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"peak_rss_kb\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_TRUE(json.ends_with("]}"));
}

TEST(TraceEvents, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_trace_events("").has_value());
  EXPECT_FALSE(obs::parse_trace_events("{}").has_value());
  EXPECT_FALSE(obs::parse_trace_events("[]").has_value());
  // A metrics snapshot is not a trace-event file.
  EXPECT_FALSE(obs::parse_trace_events(
                   "{\"counters\":{},\"gauges\":{},\"histograms\":{}}")
                   .has_value());
}

TEST(TraceEvents, PeakRssIsReportedWhereSupported) {
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(obs::peak_rss_kb(), 0U);
#else
  SUCCEED();
#endif
}

// --- memory accounting (pure size math, metrics plane) ---------------------

TEST(MemoryGauges, DomainTableBytesArePureSizeMath) {
  reset_all();
  runtime::DomainTable table;
  table.intern("xn--e1afmkfd.com");
  const auto after_one = obs::Registry::global().snapshot().gauges;
  const std::int64_t arena_one = after_one.at("runtime.domain_table.arena_bytes");
  const std::int64_t index_one = after_one.at("runtime.domain_table.index_bytes");
  EXPECT_GT(arena_one, 0);
  EXPECT_GT(index_one, 0);

  table.intern("xn--80ak6aa92e.net");
  table.intern("example.org");
  const auto after_three = obs::Registry::global().snapshot().gauges;
  EXPECT_EQ(after_three.at("runtime.domain_table.entries"), 3);
  // Index cost = slot table (pow2 capacity) + a per-entry side-table
  // constant, so it grows monotonically but not linearly per entry.
  const std::int64_t arena_three =
      after_three.at("runtime.domain_table.arena_bytes");
  const std::int64_t index_three =
      after_three.at("runtime.domain_table.index_bytes");
  EXPECT_GT(index_three, index_one);
  EXPECT_GE(arena_three, arena_one);

  // Pure size math, not allocator telemetry: replaying the same interns
  // after a reset reproduces the exact same gauge values.
  reset_all();
  runtime::DomainTable replay;
  replay.intern("xn--e1afmkfd.com");
  replay.intern("xn--80ak6aa92e.net");
  replay.intern("example.org");
  const auto replayed = obs::Registry::global().snapshot().gauges;
  EXPECT_EQ(replayed.at("runtime.domain_table.arena_bytes"), arena_three);
  EXPECT_EQ(replayed.at("runtime.domain_table.index_bytes"), index_three);
}

// The ISSUE acceptance criterion: the working-set gauges are size math, not
// allocator telemetry, so the gauge map in the snapshot is bit-identical no
// matter how many workers ran the scan.
TEST(MemoryGauges, IdenticalAt1_2_8Threads) {
  const auto brands = ecosystem::alexa_top(50);
  std::vector<std::string> domains;
  for (const auto& brand : brands) {
    domains.push_back(brand.domain);
  }
  domains.push_back("xn--pple-43d.com");

  std::vector<std::map<std::string, std::int64_t>> runs;
  for (unsigned threads : {1U, 2U, 8U}) {
    reset_all();
    core::HomographOptions options;
    options.threads = threads;
    const core::HomographDetector detector(brands, options);
    runtime::DomainTable table;
    std::vector<runtime::DomainId> ids;
    for (const std::string& domain : domains) {
      ids.push_back(table.intern(domain));
    }
    (void)detector.scan(table, ids);
    // The UC-SimList table is not on the homograph path; touch it so its
    // working-set gauge participates in the determinism check too.
    (void)unicode::all_homoglyphs();
    auto gauges = obs::Registry::global().snapshot().gauges;
    std::map<std::string, std::int64_t> run(gauges.begin(), gauges.end());
    runs.push_back(std::move(run));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  EXPECT_GT(runs[0].at("runtime.domain_table.arena_bytes"), 0);
  EXPECT_GT(runs[0].at("runtime.domain_table.index_bytes"), 0);
  EXPECT_GT(runs[0].at("core.homograph.brand_table_bytes"), 0);
  // Static-table working sets re-note per registry generation, so they hold
  // their size-math values even though reset_all() ran between runs.
  EXPECT_GT(runs[0].at("unicode.confusables.simlist_bytes"), 0);
  EXPECT_GT(runs[0].at("render.font.glyph_table_bytes"), 0);
}

// --- snapshot file placement (IDNSCOPE_OBS_DIR) ----------------------------

TEST(ObsDir, OutputDirHonorsEnvAndCreatesIt) {
  const std::string dir =
      ::testing::TempDir() + "idnscope_obsdir_test/nested";
  std::filesystem::remove_all(::testing::TempDir() + "idnscope_obsdir_test");
  ASSERT_EQ(setenv("IDNSCOPE_OBS_DIR", dir.c_str(), 1), 0);
  EXPECT_EQ(obs::output_dir(), dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));  // created on demand
  EXPECT_EQ(obs::output_path("METRICS_x.json"), dir + "/METRICS_x.json");
  ASSERT_EQ(unsetenv("IDNSCOPE_OBS_DIR"), 0);
  EXPECT_EQ(obs::output_dir(), "");
  EXPECT_EQ(obs::output_path("METRICS_x.json"), "METRICS_x.json");
}

TEST(ObsDir, EmitMetricsWritesMetricsAndTraceFilesIntoObsDir) {
  reset_all();
  obs::Registry::global().counter("test.obs.emit_env").add(1);
  { const obs::StageTimer stage("emit_env_stage"); }
  const std::string dir = ::testing::TempDir() + "idnscope_emit_test";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("IDNSCOPE_OBS_DIR", dir.c_str(), 1), 0);
  obs::emit_metrics("obs_env_test");
  ASSERT_EQ(unsetenv("IDNSCOPE_OBS_DIR"), 0);

  const std::string metrics_path = dir + "/METRICS_obs_env_test.json";
  const std::string trace_path = dir + "/TRACE_obs_env_test.json";
  ASSERT_TRUE(std::filesystem::exists(metrics_path));
  ASSERT_TRUE(std::filesystem::exists(trace_path));
  // The provenance plane rides along even when the ledger is empty — the
  // header still records the (zero) counts.
  ASSERT_TRUE(std::filesystem::exists(dir + "/PROV_obs_env_test.jsonl"));
  // The METRICS file carries the deterministic plane: it parses back and
  // contains the counter; the TRACE file parses as trace events.
  std::string metrics_json;
  {
    std::FILE* in = std::fopen(metrics_path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    char buffer[65536];
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), in);
    std::fclose(in);
    metrics_json.assign(buffer, got);
    while (!metrics_json.empty() && metrics_json.back() == '\n') {
      metrics_json.pop_back();
    }
  }
  const auto snapshot = obs::parse_snapshot(metrics_json);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->counters.at("test.obs.emit_env"), 1U);
  std::filesystem::remove_all(dir);
}

// --- the count-effort-exactly-once regression ------------------------------

// Detector effort must land in the registry exactly once per unit of work,
// on every execution path: the serial scan overload, the interned scan when
// the executor falls back to serial (threads=1 / tiny input), and the
// threaded path.  A double count on any path would show up as differing
// core.homograph.* totals below.
std::map<std::string, std::uint64_t> homograph_counters() {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] :
       obs::Registry::global().snapshot().counters) {
    if (name.starts_with("core.homograph.")) {
      out.emplace(name, value);
    }
  }
  return out;
}

TEST(EffortAccounting, HomographEffortIdenticalOnSerialAndParallelPaths) {
  const auto brands = ecosystem::alexa_top(100);
  core::HomographOptions options;
  const core::HomographDetector detector(brands, options);

  std::vector<std::string> domains;
  for (std::size_t i = 0; i < 40 && i < brands.size(); ++i) {
    domains.push_back(brands[i].domain);
  }
  domains.push_back("xn--pple-43d.com");   // аpple.com (Cyrillic а)
  domains.push_back("xn--gogle-n4a.net");  // goǫgle-like filler
  runtime::DomainTable table;
  std::vector<runtime::DomainId> ids;
  for (const std::string& domain : domains) {
    ids.push_back(table.intern(domain));
  }

  reset_all();
  const auto serial_matches = detector.scan(domains);
  const auto serial = homograph_counters();
  ASSERT_GT(serial.at("core.homograph.domains_scanned"), 0U);

  std::vector<std::map<std::string, std::uint64_t>> interned_runs;
  for (unsigned threads : {1U, 8U}) {
    core::HomographOptions threaded = options;
    threaded.threads = threads;
    const core::HomographDetector interned_detector(brands, threaded);
    reset_all();
    const auto matches = interned_detector.scan(table, ids);
    EXPECT_EQ(matches.size(), serial_matches.size()) << "threads=" << threads;
    interned_runs.push_back(homograph_counters());
  }
  EXPECT_EQ(interned_runs[0], serial);  // executor serial fallback == serial
  EXPECT_EQ(interned_runs[1], serial);  // threaded == serial
}

}  // namespace
}  // namespace idnscope
