// Observability layer tests: registry merge determinism across thread
// counts, span nesting, snapshot serialization round-trip, and the
// count-effort-exactly-once contract the detectors rely on.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "idnscope/core/homograph.h"
#include "idnscope/ecosystem/brands.h"
#include "idnscope/obs/export.h"
#include "idnscope/obs/metrics.h"
#include "idnscope/obs/trace.h"
#include "idnscope/runtime/domain_table.h"
#include "idnscope/runtime/parallel.h"

namespace idnscope {
namespace {

// The registry is process-global and shared by every test in this binary;
// each test that measures absolute values starts from a clean slate.
void reset_all() {
  obs::Registry::global().reset();
  obs::reset_trace();
}

TEST(Metrics, ToMicrosFixedPoint) {
  EXPECT_EQ(obs::to_micros(0.0), 0U);
  EXPECT_EQ(obs::to_micros(1.0), 1000000U);
  EXPECT_EQ(obs::to_micros(0.95), 950000U);
  EXPECT_EQ(obs::to_micros(-3.5), 0U);      // non-negative by contract
  EXPECT_EQ(obs::to_micros(4e-7), 0U);      // round to nearest
  EXPECT_EQ(obs::to_micros(6e-7), 1U);
}

TEST(Metrics, CounterMergeIdenticalAt1_2_8Threads) {
  const obs::Counter counter =
      obs::Registry::global().counter("test.obs.counter_merge");
  for (unsigned threads : {1U, 2U, 8U}) {
    reset_all();
    runtime::parallel_for(10007, threads,
                          [&](std::size_t) { counter.add(1); });
    EXPECT_EQ(counter.value(), 10007U) << "threads=" << threads;
  }
}

TEST(Metrics, HistogramMergeIdenticalAt1_2_8Threads) {
  const obs::Histogram hist = obs::Registry::global().histogram(
      "test.obs.hist_merge", {0.25, 0.5, 0.75});
  std::vector<obs::HistogramSnapshot> runs;
  for (unsigned threads : {1U, 2U, 8U}) {
    reset_all();
    runtime::parallel_for(4001, threads, [&](std::size_t i) {
      hist.observe(static_cast<double>(i) / 4000.0);
    });
    runs.push_back(obs::Registry::global().snapshot().histograms.at(
        "test.obs.hist_merge"));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  EXPECT_EQ(runs[0].count, 4001U);
}

TEST(Metrics, HistogramBucketSemantics) {
  reset_all();
  const obs::Histogram hist =
      obs::Registry::global().histogram("test.obs.hist_buckets", {1.0, 2.0});
  ASSERT_EQ(hist.buckets(), 3U);  // (-inf,1), [1,2), [2,+inf)
  hist.observe(0.5);
  hist.observe(1.0);  // boundary lands in [1,2)
  hist.observe(1.5);
  hist.observe(2.0);  // boundary lands in [2,+inf)
  EXPECT_EQ(hist.bucket_count(0), 1U);
  EXPECT_EQ(hist.bucket_count(1), 2U);
  EXPECT_EQ(hist.bucket_count(2), 1U);
  EXPECT_EQ(hist.count(), 4U);
  EXPECT_EQ(hist.sum_micros(), obs::to_micros(0.5) + obs::to_micros(1.0) +
                                   obs::to_micros(1.5) + obs::to_micros(2.0));
}

TEST(Metrics, RegistrationIsIdempotent) {
  reset_all();
  const obs::Counter a = obs::Registry::global().counter("test.obs.same");
  const obs::Counter b = obs::Registry::global().counter("test.obs.same");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5U);  // both handles share one cell
  EXPECT_EQ(b.value(), 5U);

  const obs::Histogram first =
      obs::Registry::global().histogram("test.obs.same_hist", {1.0, 2.0});
  const obs::Histogram second =
      obs::Registry::global().histogram("test.obs.same_hist", {9.0});
  EXPECT_EQ(second.bounds(), first.bounds());  // first registration wins
  EXPECT_EQ(second.buckets(), 3U);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandlesValid) {
  const obs::Counter counter =
      obs::Registry::global().counter("test.obs.reset");
  counter.add(7);
  obs::Registry::global().reset();
  EXPECT_EQ(counter.value(), 0U);
  counter.add(1);  // handle still points at a live cell
  EXPECT_EQ(counter.value(), 1U);
}

TEST(Metrics, GaugeLastWriteWins) {
  reset_all();
  const obs::Gauge gauge = obs::Registry::global().gauge("test.obs.gauge");
  gauge.set(42);
  gauge.set(-17);
  EXPECT_EQ(gauge.value(), -17);
  EXPECT_EQ(obs::Registry::global().snapshot().gauges.at("test.obs.gauge"),
            -17);
}

TEST(Export, SnapshotJsonRoundTrip) {
  reset_all();
  obs::Registry::global().counter("test.obs.rt_counter").add(123);
  obs::Registry::global().gauge("test.obs.rt_gauge").set(-456);
  const obs::Histogram hist =
      obs::Registry::global().histogram("test.obs.rt_hist", {0.5, 0.9});
  hist.observe(0.25);
  hist.observe(0.95);

  const obs::Snapshot original = obs::Registry::global().snapshot();
  const std::string json = obs::snapshot_to_json(original);
  const auto parsed = obs::parse_snapshot(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
  // Canonical form: re-serializing the parse gives identical bytes.
  EXPECT_EQ(obs::snapshot_to_json(*parsed), json);
}

TEST(Export, EmptyRegistrySerializesAndParses) {
  const obs::Snapshot empty;
  const std::string json = obs::snapshot_to_json(empty);
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  const auto parsed = obs::parse_snapshot(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, empty);
}

TEST(Export, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_snapshot("").has_value());
  EXPECT_FALSE(obs::parse_snapshot("{}").has_value());
  EXPECT_FALSE(obs::parse_snapshot("not json at all").has_value());
  EXPECT_FALSE(
      obs::parse_snapshot("{\"counters\":{\"a\":1},\"gauges\":{}}").has_value());
  // Trailing garbage after a valid snapshot is an error, not ignored.
  EXPECT_FALSE(obs::parse_snapshot(
                   "{\"counters\":{},\"gauges\":{},\"histograms\":{}} ")
                   .has_value());
}

TEST(Trace, SpansNestByPath) {
  reset_all();
  EXPECT_EQ(obs::current_trace_path(), "");
  {
    const obs::StageTimer outer("outer");
    EXPECT_EQ(obs::current_trace_path(), "outer");
    {
      const obs::StageTimer inner("inner");
      EXPECT_EQ(obs::current_trace_path(), "outer/inner");
    }
    EXPECT_EQ(obs::current_trace_path(), "outer");
  }
  EXPECT_EQ(obs::current_trace_path(), "");
  const auto table = obs::trace_table();
  ASSERT_TRUE(table.contains("outer"));
  ASSERT_TRUE(table.contains("outer/inner"));
  EXPECT_EQ(table.at("outer").calls, 1U);
  EXPECT_EQ(table.at("outer/inner").calls, 1U);
}

TEST(Trace, ThreadTraceRootSeedsWorkerPath) {
  reset_all();
  {
    const obs::StageTimer stage("stage");
    const std::string parent = obs::current_trace_path();
    std::thread worker([&] {
      const obs::ThreadTraceRoot root(parent);
      const obs::StageTimer busy("worker");
      EXPECT_EQ(obs::current_trace_path(), "stage/worker");
    });
    worker.join();
  }
  EXPECT_EQ(obs::trace_table().at("stage/worker").calls, 1U);
}

TEST(Trace, ExecutorAttributesWorkerBusyTimeToCallingStage) {
  reset_all();
  {
    const obs::StageTimer stage("teststage");
    runtime::parallel_for(1000, 2, [](std::size_t) {});
  }
  const auto table = obs::trace_table();
  ASSERT_TRUE(table.contains("teststage/runtime.parallel.worker"));
  // One span per worker; the count scales with the worker count, which is
  // exactly why this lives on the trace plane, not in the snapshot file.
  EXPECT_GE(table.at("teststage/runtime.parallel.worker").calls, 1U);
}

// --- the count-effort-exactly-once regression ------------------------------

// Detector effort must land in the registry exactly once per unit of work,
// on every execution path: the serial scan overload, the interned scan when
// the executor falls back to serial (threads=1 / tiny input), and the
// threaded path.  A double count on any path would show up as differing
// core.homograph.* totals below.
std::map<std::string, std::uint64_t> homograph_counters() {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] :
       obs::Registry::global().snapshot().counters) {
    if (name.starts_with("core.homograph.")) {
      out.emplace(name, value);
    }
  }
  return out;
}

TEST(EffortAccounting, HomographEffortIdenticalOnSerialAndParallelPaths) {
  const auto brands = ecosystem::alexa_top(100);
  core::HomographOptions options;
  const core::HomographDetector detector(brands, options);

  std::vector<std::string> domains;
  for (std::size_t i = 0; i < 40 && i < brands.size(); ++i) {
    domains.push_back(brands[i].domain);
  }
  domains.push_back("xn--pple-43d.com");   // аpple.com (Cyrillic а)
  domains.push_back("xn--gogle-n4a.net");  // goǫgle-like filler
  runtime::DomainTable table;
  std::vector<runtime::DomainId> ids;
  for (const std::string& domain : domains) {
    ids.push_back(table.intern(domain));
  }

  reset_all();
  const auto serial_matches = detector.scan(domains);
  const auto serial = homograph_counters();
  ASSERT_GT(serial.at("core.homograph.domains_scanned"), 0U);

  std::vector<std::map<std::string, std::uint64_t>> interned_runs;
  for (unsigned threads : {1U, 8U}) {
    core::HomographOptions threaded = options;
    threaded.threads = threads;
    const core::HomographDetector interned_detector(brands, threaded);
    reset_all();
    const auto matches = interned_detector.scan(table, ids);
    EXPECT_EQ(matches.size(), serial_matches.size()) << "threads=" << threads;
    interned_runs.push_back(homograph_counters());
  }
  EXPECT_EQ(interned_runs[0], serial);  // executor serial fallback == serial
  EXPECT_EQ(interned_runs[1], serial);  // threaded == serial
}

}  // namespace
}  // namespace idnscope
