// UTF-8 codec tests: RFC 3629 strictness and round-trip properties.
#include <gtest/gtest.h>

#include "idnscope/common/rng.h"
#include "idnscope/unicode/utf8.h"

namespace idnscope::unicode {
namespace {

TEST(Utf8, EncodeAscii) {
  EXPECT_EQ(encode(U"hello"), "hello");
  EXPECT_EQ(encode_code_point(U'a'), "a");
}

TEST(Utf8, EncodeMultibyteBoundaries) {
  EXPECT_EQ(encode_code_point(0x7F), "\x7F");
  EXPECT_EQ(encode_code_point(0x80), "\xC2\x80");
  EXPECT_EQ(encode_code_point(0x7FF), "\xDF\xBF");
  EXPECT_EQ(encode_code_point(0x800), "\xE0\xA0\x80");
  EXPECT_EQ(encode_code_point(0xFFFF), "\xEF\xBF\xBF");
  EXPECT_EQ(encode_code_point(0x10000), "\xF0\x90\x80\x80");
  EXPECT_EQ(encode_code_point(0x10FFFF), "\xF4\x8F\xBF\xBF");
}

TEST(Utf8, EncodeKnownStrings) {
  EXPECT_EQ(encode(std::u32string{0x4E2D, 0x56FD}), "中国");
  EXPECT_EQ(encode(std::u32string{0x00E9}), "é");
}

TEST(Utf8, InvalidCodePointsEncodeAsReplacement) {
  EXPECT_EQ(encode_code_point(0xD800), "");
  EXPECT_EQ(encode_code_point(0x110000), "");
  EXPECT_EQ(encode(std::u32string{0xD800}), "\xEF\xBF\xBD");  // U+FFFD
}

TEST(Utf8, DecodeValid) {
  auto decoded = decode("中国abc");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), (std::u32string{0x4E2D, 0x56FD, U'a', U'b', U'c'}));
}

struct BadInput {
  const char* name;
  std::string_view bytes;
};

class Utf8MalformedTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(Utf8MalformedTest, StrictDecodeFails) {
  auto decoded = decode(GetParam().bytes);
  EXPECT_FALSE(decoded.ok()) << GetParam().name;
}

TEST_P(Utf8MalformedTest, LossyDecodeNeverFails) {
  const std::u32string out = decode_lossy(GetParam().bytes);
  bool has_replacement = false;
  for (char32_t cp : out) {
    if (cp == 0xFFFD) {
      has_replacement = true;
    }
  }
  EXPECT_TRUE(has_replacement) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Utf8MalformedTest,
    ::testing::Values(
        BadInput{"stray continuation", "\x80"},
        BadInput{"truncated 2-byte", "\xC3"},
        BadInput{"truncated 3-byte", "\xE4\xB8"},
        BadInput{"truncated 4-byte", "\xF0\x90\x80"},
        BadInput{"overlong 2-byte NUL", std::string_view("\xC0\x80", 2)},
        BadInput{"overlong 3-byte slash", "\xE0\x80\xAF"},
        BadInput{"overlong 4-byte", "\xF0\x80\x80\x80"},
        BadInput{"surrogate D800", "\xED\xA0\x80"},
        BadInput{"surrogate DFFF", "\xED\xBF\xBF"},
        BadInput{"beyond 10FFFF", "\xF4\x90\x80\x80"},
        BadInput{"invalid lead F8", "\xF8\x88\x80\x80\x80"},
        BadInput{"bad continuation", "\xC3\x28"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == ' ' || c == '-') c = '_';
      }
      return name;
    });

TEST(Utf8, LengthCountsCodePoints) {
  EXPECT_EQ(length("abc"), 3U);
  EXPECT_EQ(length("中国"), 2U);
  EXPECT_EQ(length(""), 0U);
  EXPECT_EQ(length("\xC3"), std::nullopt);
}

TEST(Utf8, IsAscii) {
  EXPECT_TRUE(is_ascii(std::string_view("abc-123")));
  EXPECT_FALSE(is_ascii(std::string_view("café")));
  EXPECT_TRUE(is_ascii(std::u32string_view(U"abc")));
  EXPECT_FALSE(is_ascii(std::u32string_view(U"中")));
}

TEST(Utf8Property, RandomScalarValuesRoundTrip) {
  Rng rng(12345);
  for (int i = 0; i < 2000; ++i) {
    char32_t cp;
    do {
      cp = static_cast<char32_t>(rng.uniform(0, kMaxCodePoint));
    } while (!is_valid_code_point(cp));
    const std::string encoded = encode_code_point(cp);
    ASSERT_FALSE(encoded.empty());
    auto decoded = decode(encoded);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), 1U);
    EXPECT_EQ(decoded.value()[0], cp);
  }
}

TEST(Utf8Property, RandomStringsRoundTrip) {
  Rng rng(777);
  for (int i = 0; i < 300; ++i) {
    std::u32string text;
    const std::size_t length = rng.uniform(0, 40);
    for (std::size_t k = 0; k < length; ++k) {
      char32_t cp;
      do {
        cp = static_cast<char32_t>(rng.uniform(1, kMaxCodePoint));
      } while (!is_valid_code_point(cp));
      text.push_back(cp);
    }
    auto decoded = decode(encode(text));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), text);
  }
}

}  // namespace
}  // namespace idnscope::unicode
