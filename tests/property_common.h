// Seeded property-test harness.
//
// A property test draws N cases from a deterministic Rng stream, checks a
// boolean property for each, and — on the first failure — greedily shrinks
// the counterexample before reporting.  Everything is reproducible from
// (seed, property name, case index): the per-case generator forks the base
// Rng by "name/index", so adding cases or properties never perturbs the
// values other cases see, and the failure report carries enough to replay
// a single case in isolation.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "idnscope/common/rng.h"

namespace idnscope::testing {

struct PropertyConfig {
  std::uint64_t seed = 0x1d75c0de2017ULL;
  std::size_t cases = 10000;
  // Bound on property evaluations spent minimizing one counterexample.
  std::size_t max_shrink_evals = 10000;
};

// Check `prop` over `config.cases` generated values.
//   gen(rng)        -> T            draw one case
//   prop(value)     -> bool         true = property holds
//   shrink(value)   -> vector<T>    smaller candidates (may be empty)
//   print(value)    -> string       human-readable form for the report
// Reports (via ADD_FAILURE) the seed, case index, original and minimized
// counterexample of the first failing case, then returns.
template <typename T, typename Gen, typename Prop, typename Shrink,
          typename Print>
void check_property(const std::string& name, const PropertyConfig& config,
                    Gen&& gen, Prop&& prop, Shrink&& shrink, Print&& print) {
  const Rng base(config.seed);
  for (std::size_t index = 0; index < config.cases; ++index) {
    Rng rng = base.fork(name + "/" + std::to_string(index));
    const T original = gen(rng);
    if (prop(original)) {
      continue;
    }
    // Greedy shrink: take the first failing candidate each round until no
    // candidate fails (or the evaluation budget runs out).
    T minimized = original;
    std::size_t evals = 0;
    bool progressed = true;
    while (progressed && evals < config.max_shrink_evals) {
      progressed = false;
      for (const T& candidate : shrink(minimized)) {
        if (++evals > config.max_shrink_evals) {
          break;
        }
        if (!prop(candidate)) {
          minimized = candidate;
          progressed = true;
          break;
        }
      }
    }
    ADD_FAILURE() << "property '" << name << "' failed\n"
                  << "  seed=" << config.seed << " case=" << index
                  << " (replay: PropertyConfig{.seed = " << config.seed
                  << "}, fork tag \"" << name << "/" << index << "\")\n"
                  << "  original:  " << print(original) << "\n"
                  << "  minimized: " << print(minimized);
    return;
  }
}

}  // namespace idnscope::testing
