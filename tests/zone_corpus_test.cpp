// Malformed-zone corpus: every file under tests/data/zone_corpus/ is fed
// to the serial scanner and to the sharded scanner (at several shard/batch
// geometries and thread counts), asserting the two return *identical*
// results — same (domain, is_idn) sequence, same stats, same error code
// and message — and never crash.  The corpus covers truncation, CRLF,
// directive edge cases, oversize labels, embedded NUL and non-UTF-8 bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "idnscope/dns/zone_io.h"

#ifndef IDNSCOPE_ZONE_CORPUS_DIR
#error "IDNSCOPE_ZONE_CORPUS_DIR must point at tests/data/zone_corpus"
#endif

namespace idnscope::dns {
namespace {

struct ScanResult {
  bool ok = false;
  std::string error_code;
  std::string error_message;
  ZoneScanStats stats;
  std::vector<std::pair<std::string, bool>> slds;

  bool operator==(const ScanResult& other) const {
    return ok == other.ok && error_code == other.error_code &&
           error_message == other.error_message &&
           stats.origin == other.stats.origin &&
           stats.record_lines == other.stats.record_lines &&
           stats.distinct_slds == other.stats.distinct_slds &&
           stats.idns == other.stats.idns && slds == other.slds;
  }
};

ScanResult run_serial(const std::string& path) {
  ScanResult out;
  const auto scanned =
      scan_zone_file(path, [&](std::string_view domain, bool is_idn) {
        out.slds.emplace_back(std::string(domain), is_idn);
      });
  out.ok = scanned.ok();
  if (scanned.ok()) {
    out.stats = scanned.value();
  } else {
    out.error_code = scanned.error().code;
    out.error_message = scanned.error().message;
  }
  return out;
}

ScanResult run_sharded(const std::string& path, const ZoneScanOptions& options) {
  ScanResult out;
  const auto scanned =
      scan_zone_file_sharded(path, options, [&](const SldBatch& batch) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          out.slds.emplace_back(std::string(batch.domains[i]),
                                batch.is_idn[i] != 0);
        }
      });
  out.ok = scanned.ok();
  if (scanned.ok()) {
    out.stats = scanned.value();
  } else {
    out.error_code = scanned.error().code;
    out.error_message = scanned.error().message;
  }
  return out;
}

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(IDNSCOPE_ZONE_CORPUS_DIR)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string base_name(const std::string& path) {
  return std::filesystem::path(path).filename().string();
}

TEST(ZoneCorpus, CorpusIsPresent) {
  // Guard against a silently-empty directory making every test vacuous.
  EXPECT_GE(corpus_files().size(), 12U);
}

TEST(ZoneCorpus, ShardedMatchesSerialOnEveryFile) {
  // Tiny shard_bytes forces seams through the middle of records and owner
  // runs; tiny batch_size forces many flushes; the thread counts cover
  // serial fallback, partial and full parallelism.
  const std::vector<ZoneScanOptions> geometries = {
      ZoneScanOptions{},
      ZoneScanOptions{1, 48, 3},
      ZoneScanOptions{2, 48, 3},
      ZoneScanOptions{8, 16, 1},
      ZoneScanOptions{8, 4096, 64},
  };
  for (const std::string& path : corpus_files()) {
    const ScanResult serial = run_serial(path);
    for (const ZoneScanOptions& options : geometries) {
      const ScanResult sharded = run_sharded(path, options);
      EXPECT_TRUE(serial == sharded)
          << base_name(path) << " diverged at shard_bytes="
          << options.shard_bytes << " batch_size=" << options.batch_size
          << " threads=" << options.threads << "\n  serial: ok=" << serial.ok
          << " err=" << serial.error_code << " slds=" << serial.slds.size()
          << "\n  sharded: ok=" << sharded.ok << " err=" << sharded.error_code
          << " slds=" << sharded.slds.size();
    }
  }
}

// Targeted expectations for the known files, so the corpus cannot rot into
// "everything errors and trivially matches".

TEST(ZoneCorpus, BadOriginArityReportsSerialLineNumber) {
  const std::string path =
      std::string(IDNSCOPE_ZONE_CORPUS_DIR) + "/bad_origin_args.zone";
  const ScanResult serial = run_serial(path);
  ASSERT_FALSE(serial.ok);
  EXPECT_EQ(serial.error_code, "zone.bad_directive");
  EXPECT_NE(serial.error_message.find("line 4"), std::string::npos)
      << serial.error_message;
}

TEST(ZoneCorpus, MissingAndEmptyOriginsFail) {
  for (const char* name :
       {"/no_origin.zone", "/origin_dot.zone", "/empty.zone",
        "/comments_only.zone", "/whitespace_only.zone"}) {
    const ScanResult serial =
        run_serial(std::string(IDNSCOPE_ZONE_CORPUS_DIR) + name);
    EXPECT_FALSE(serial.ok) << name;
    EXPECT_EQ(serial.error_code, "zone.no_origin") << name;
  }
}

TEST(ZoneCorpus, WellFormedFilesScan) {
  struct Expectation {
    const char* name;
    std::uint64_t distinct;
    std::uint64_t idns;
  };
  // crlf: 3 owners, one ACE.  truncated_no_newline: the final unterminated
  // record line still counts.  origin_changes: alpha.com dedups across
  // origin switches; alpha.net is distinct; apex SOA is skipped.
  const std::vector<Expectation> expectations = {
      {"/crlf.zone", 3, 1},
      {"/truncated_no_newline.zone", 2, 0},
      {"/origin_changes.zone", 5, 0},
      {"/oversize_labels.zone", 3, 0},
  };
  for (const Expectation& expected : expectations) {
    const ScanResult serial =
        run_serial(std::string(IDNSCOPE_ZONE_CORPUS_DIR) + expected.name);
    ASSERT_TRUE(serial.ok) << expected.name << ": " << serial.error_message;
    EXPECT_EQ(serial.stats.distinct_slds, expected.distinct) << expected.name;
    EXPECT_EQ(serial.stats.idns, expected.idns) << expected.name;
  }
}

}  // namespace
}  // namespace idnscope::dns
