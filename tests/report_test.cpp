// Markdown report builder tests.
#include <gtest/gtest.h>

#include "idnscope/core/report.h"

namespace idnscope::core {
namespace {

const Study& tiny_study() {
  static const ecosystem::Ecosystem eco =
      ecosystem::generate(ecosystem::Scenario::tiny());
  static const Study study(eco);
  return study;
}

TEST(Report, ContainsEverySection) {
  const std::string report = build_markdown_report(tiny_study());
  for (const char* section :
       {"# IDN ecosystem study", "## Dataset", "## Languages",
        "## Registration", "## DNS activity", "## Web content", "## HTTPS",
        "## Homograph abuse", "## Semantic abuse", "## Browser IDN policies"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
}

TEST(Report, SectionsCanBeDisabled) {
  ReportOptions options;
  options.include_homographs = false;
  options.include_semantics = false;
  options.include_browser_survey = false;
  const std::string report = build_markdown_report(tiny_study(), options);
  EXPECT_EQ(report.find("## Homograph abuse"), std::string::npos);
  EXPECT_EQ(report.find("## Semantic abuse"), std::string::npos);
  EXPECT_EQ(report.find("## Browser IDN policies"), std::string::npos);
  EXPECT_NE(report.find("## Dataset"), std::string::npos);
}

TEST(Report, DeterministicForSameOptions) {
  EXPECT_EQ(build_markdown_report(tiny_study()),
            build_markdown_report(tiny_study()));
}

TEST(Report, MentionsKeyBrandsAndProviders) {
  const std::string report = build_markdown_report(tiny_study());
  EXPECT_NE(report.find("google.com"), std::string::npos);
  EXPECT_NE(report.find("58.com"), std::string::npos);
  EXPECT_NE(report.find("sedoparking.com"), std::string::npos);
  EXPECT_NE(report.find("Chinese"), std::string::npos);
}

}  // namespace
}  // namespace idnscope::core
