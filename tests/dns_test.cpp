// Passive DNS store, provider clients, resolver and IPv4 tests.
#include <gtest/gtest.h>

#include "idnscope/dns/ipv4.h"
#include "idnscope/dns/pdns.h"
#include "idnscope/dns/resolver.h"

namespace idnscope::dns {
namespace {

TEST(Ipv4, ParseAndFormat) {
  auto ip = Ipv4::parse("192.0.2.17");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.0.2.17");
  EXPECT_EQ(ip->segment24_string(), "192.0.2.0/24");
  EXPECT_EQ(Ipv4(192, 0, 2, 17), *ip);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("192.0.2").has_value());
  EXPECT_FALSE(Ipv4::parse("192.0.2.256").has_value());
  EXPECT_FALSE(Ipv4::parse("192.0.2.a").has_value());
  EXPECT_FALSE(Ipv4::parse("192..2.1").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.1000").has_value());
}

TEST(Ipv4, Segment24SharedWithinSlash24) {
  EXPECT_EQ(Ipv4(10, 1, 2, 3).segment24(), Ipv4(10, 1, 2, 250).segment24());
  EXPECT_NE(Ipv4(10, 1, 2, 3).segment24(), Ipv4(10, 1, 3, 3).segment24());
}

TEST(PassiveDns, ObserveMergesSpansAndCounts) {
  PassiveDnsDb db;
  db.observe("example.com", Date{2016, 5, 1}, 10, Ipv4(192, 0, 2, 1));
  db.observe("example.com", Date{2015, 1, 1}, 5);
  db.observe("example.com", Date{2017, 3, 3}, 7, Ipv4(192, 0, 2, 1));
  const DnsAggregate* aggregate = db.lookup("example.com");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->query_count, 22U);
  EXPECT_EQ(aggregate->first_seen, (Date{2015, 1, 1}));
  EXPECT_EQ(aggregate->last_seen, (Date{2017, 3, 3}));
  EXPECT_EQ(aggregate->resolved_ips.size(), 1U);  // deduplicated
  EXPECT_EQ(aggregate->active_days(), days_between(Date{2015, 1, 1},
                                                   Date{2017, 3, 3}));
}

TEST(PassiveDns, LookupMiss) {
  PassiveDnsDb db;
  EXPECT_EQ(db.lookup("missing.com"), nullptr);
  EXPECT_EQ(db.domain_count(), 0U);
}

TEST(PdnsClient, UnlimitedProviderServesEverything) {
  PassiveDnsDb db;
  db.observe("a.com", Date{2015, 6, 1}, 3);
  PdnsClient client(db, {"DNS Pai", 0, Date{2014, 8, 4}, Date{2017, 10, 13}});
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(client.query("a.com", Date{2017, 9, 21}).has_value());
  }
  EXPECT_EQ(client.rejected_queries(), 0U);
}

TEST(PdnsClient, QuotaEnforcedPerDay) {
  PassiveDnsDb db;
  db.observe("a.com", Date{2015, 6, 1}, 3);
  PdnsClient client(db, {"Farsight", 2, Date{2010, 6, 24}, Date{2017, 12, 3}});
  const Date day1{2017, 9, 21};
  EXPECT_TRUE(client.query("a.com", day1).has_value());
  EXPECT_TRUE(client.query("a.com", day1).has_value());
  EXPECT_FALSE(client.query("a.com", day1).has_value());
  EXPECT_EQ(client.rejected_queries(), 1U);
  // The next day the quota resets.
  EXPECT_TRUE(client.query("a.com", day1.plus_days(1)).has_value());
}

TEST(PdnsClient, WindowClipping) {
  PassiveDnsDb db;
  db.observe("old.com", Date{2008, 1, 1}, 100);
  db.observe("old.com", Date{2016, 1, 1}, 1);
  PdnsClient client(db, {"DNS Pai", 0, Date{2014, 8, 4}, Date{2017, 10, 13}});
  auto aggregate = client.query("old.com", Date{2017, 9, 21});
  ASSERT_TRUE(aggregate.has_value());
  EXPECT_EQ(aggregate->first_seen, (Date{2014, 8, 4}));  // clipped
  EXPECT_EQ(aggregate->last_seen, (Date{2016, 1, 1}));
}

TEST(PdnsClient, EntirelyOutsideWindowIsMiss) {
  PassiveDnsDb db;
  db.observe("ancient.com", Date{2005, 1, 1}, 100);
  db.observe("ancient.com", Date{2006, 1, 1}, 1);
  PdnsClient client(db, {"DNS Pai", 0, Date{2014, 8, 4}, Date{2017, 10, 13}});
  EXPECT_FALSE(client.query("ancient.com", Date{2017, 9, 21}).has_value());
}

TEST(Resolver, DefaultsToNxDomain) {
  SimulatedResolver resolver;
  const Resolution result = resolver.resolve("unknown.com");
  EXPECT_EQ(result.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(result.resolved());
  EXPECT_EQ(resolver.query_count(), 1U);
}

TEST(Resolver, InstalledAnswers) {
  SimulatedResolver resolver;
  resolver.install("a.com", Resolution{Rcode::kNoError, {Ipv4(192, 0, 2, 1)}});
  resolver.install("broken.com", Resolution{Rcode::kRefused, {}});
  EXPECT_TRUE(resolver.resolve("a.com").resolved());
  EXPECT_FALSE(resolver.resolve("broken.com").resolved());
  EXPECT_EQ(resolver.resolve("broken.com").rcode, Rcode::kRefused);
}

TEST(Resolver, RcodeNames) {
  EXPECT_EQ(rcode_name(Rcode::kNoError), "NOERROR");
  EXPECT_EQ(rcode_name(Rcode::kRefused), "REFUSED");
  EXPECT_EQ(rcode_name(Rcode::kTimeout), "TIMEOUT");
}

}  // namespace
}  // namespace idnscope::dns
