// Zone-file disk I/O and streaming-scan tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "idnscope/dns/zone_io.h"
#include "idnscope/ecosystem/ecosystem.h"

namespace idnscope::dns {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* tag)
      : path_(std::string(::testing::TempDir()) + "/idnscope_" + tag +
              ".zone") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Zone sample_zone() {
  Zone zone("com");
  zone.add({"example.com", 172800, RrType::kNs, "ns1.host.net"});
  zone.add({"example.com", 172800, RrType::kNs, "ns2.host.net"});
  zone.add({"xn--fiq06l2rdsvs.com", 172800, RrType::kNs, "ns1.hichina.com"});
  zone.add({"www.deep.other.com", 3600, RrType::kA, "192.0.2.10"});
  return zone;
}

TEST(ZoneIo, WriteLoadRoundTrip) {
  TempFile file("roundtrip");
  const Zone zone = sample_zone();
  auto written = write_zone_file(zone, file.path());
  ASSERT_TRUE(written.ok()) << written.error().message;
  auto loaded = load_zone_file(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().origin(), "com");
  EXPECT_EQ(loaded.value().records().size(), zone.records().size());
}

TEST(ZoneIo, LoadMissingFileFails) {
  auto loaded = load_zone_file("/nonexistent/path/zone.db");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, "zone.io");
}

TEST(ZoneIo, WriteToBadPathFails) {
  EXPECT_FALSE(write_zone_file(sample_zone(), "/nonexistent/dir/x.zone").ok());
}

TEST(ZoneIo, StreamScanMatchesInMemoryScan) {
  const Zone zone = sample_zone();
  std::istringstream stream(serialize_zone(zone));
  std::vector<std::string> streamed;
  std::vector<std::string> streamed_idns;
  auto stats = scan_zone_stream(stream, [&](std::string_view domain,
                                            bool is_idn) {
    streamed.emplace_back(domain);
    if (is_idn) {
      streamed_idns.emplace_back(domain);
    }
  });
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(stats.value().origin, "com");
  EXPECT_EQ(stats.value().distinct_slds, streamed.size());
  EXPECT_EQ(stats.value().idns, streamed_idns.size());

  const auto expected = scan_slds(zone);
  EXPECT_EQ(std::set<std::string>(streamed.begin(), streamed.end()),
            std::set<std::string>(expected.begin(), expected.end()));
  EXPECT_EQ(streamed_idns, scan_idns(zone));
}

TEST(ZoneIo, StreamScanRequiresOrigin) {
  std::istringstream stream("example.com. IN NS ns1.h.net\n");
  auto stats = scan_zone_stream(stream, [](std::string_view, bool) {});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, "zone.no_origin");
}

TEST(ZoneIo, StreamScanDeduplicatesNonAdjacentOwners) {
  std::istringstream stream(
      "$ORIGIN com.\n"
      "a IN NS ns1.h.net\n"
      "b IN NS ns1.h.net\n"
      "a IN NS ns2.h.net\n"
      "www.a IN A 192.0.2.1\n");
  std::size_t calls = 0;
  auto stats = scan_zone_stream(stream,
                                [&](std::string_view, bool) { ++calls; });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 2U);
  EXPECT_EQ(stats.value().distinct_slds, 2U);
  EXPECT_EQ(stats.value().record_lines, 4U);
}

TEST(ZoneIo, StreamScanItldZone) {
  std::istringstream stream(
      "$ORIGIN xn--fiqs8s.\n"
      "xn--55qx5d IN NS ns1.cnnic.cn\n"
      "ascii-label IN NS ns1.cnnic.cn\n");
  std::size_t idns = 0;
  auto stats = scan_zone_stream(
      stream, [&](std::string_view, bool is_idn) { idns += is_idn; });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(idns, 2U);  // everything under an iTLD is an IDN
}

TEST(ZoneIo, EndToEndWithGeneratedZone) {
  // Serialize a generated org zone to disk, stream-scan it, and compare
  // with the in-memory pipeline — the workflow for real zone snapshots.
  auto scenario = ecosystem::Scenario::tiny();
  scenario.generate_filler = true;
  const auto eco = ecosystem::generate(scenario);
  const Zone& org = eco.zones[2];
  TempFile file("generated");
  ASSERT_TRUE(write_zone_file(org, file.path()).ok());

  std::vector<std::string> streamed_idns;
  auto stats = scan_zone_file(file.path(),
                              [&](std::string_view domain, bool is_idn) {
                                if (is_idn) {
                                  streamed_idns.emplace_back(domain);
                                }
                              });
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(streamed_idns, scan_idns(org));
  EXPECT_EQ(stats.value().distinct_slds, scan_slds(org).size());
}

}  // namespace
}  // namespace idnscope::dns
