// Zone-file disk I/O and streaming-scan tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "idnscope/dns/zone_io.h"
#include "idnscope/ecosystem/ecosystem.h"

namespace idnscope::dns {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* tag)
      : path_(std::string(::testing::TempDir()) + "/idnscope_" + tag +
              ".zone") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Zone sample_zone() {
  Zone zone("com");
  zone.add({"example.com", 172800, RrType::kNs, "ns1.host.net"});
  zone.add({"example.com", 172800, RrType::kNs, "ns2.host.net"});
  zone.add({"xn--fiq06l2rdsvs.com", 172800, RrType::kNs, "ns1.hichina.com"});
  zone.add({"www.deep.other.com", 3600, RrType::kA, "192.0.2.10"});
  return zone;
}

TEST(ZoneIo, WriteLoadRoundTrip) {
  TempFile file("roundtrip");
  const Zone zone = sample_zone();
  auto written = write_zone_file(zone, file.path());
  ASSERT_TRUE(written.ok()) << written.error().message;
  auto loaded = load_zone_file(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().origin(), "com");
  EXPECT_EQ(loaded.value().records().size(), zone.records().size());
}

TEST(ZoneIo, LoadMissingFileFails) {
  auto loaded = load_zone_file("/nonexistent/path/zone.db");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, "zone.io");
}

TEST(ZoneIo, WriteToBadPathFails) {
  EXPECT_FALSE(write_zone_file(sample_zone(), "/nonexistent/dir/x.zone").ok());
}

TEST(ZoneIo, StreamScanMatchesInMemoryScan) {
  const Zone zone = sample_zone();
  std::istringstream stream(serialize_zone(zone));
  std::vector<std::string> streamed;
  std::vector<std::string> streamed_idns;
  auto stats = scan_zone_stream(stream, [&](std::string_view domain,
                                            bool is_idn) {
    streamed.emplace_back(domain);
    if (is_idn) {
      streamed_idns.emplace_back(domain);
    }
  });
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(stats.value().origin, "com");
  EXPECT_EQ(stats.value().distinct_slds, streamed.size());
  EXPECT_EQ(stats.value().idns, streamed_idns.size());

  const auto expected = scan_slds(zone);
  EXPECT_EQ(std::set<std::string>(streamed.begin(), streamed.end()),
            std::set<std::string>(expected.begin(), expected.end()));
  EXPECT_EQ(streamed_idns, scan_idns(zone));
}

TEST(ZoneIo, StreamScanRequiresOrigin) {
  std::istringstream stream("example.com. IN NS ns1.h.net\n");
  auto stats = scan_zone_stream(stream, [](std::string_view, bool) {});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, "zone.no_origin");
}

TEST(ZoneIo, StreamScanDeduplicatesNonAdjacentOwners) {
  std::istringstream stream(
      "$ORIGIN com.\n"
      "a IN NS ns1.h.net\n"
      "b IN NS ns1.h.net\n"
      "a IN NS ns2.h.net\n"
      "www.a IN A 192.0.2.1\n");
  std::size_t calls = 0;
  auto stats = scan_zone_stream(stream,
                                [&](std::string_view, bool) { ++calls; });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 2U);
  EXPECT_EQ(stats.value().distinct_slds, 2U);
  EXPECT_EQ(stats.value().record_lines, 4U);
}

TEST(ZoneIo, StreamScanItldZone) {
  std::istringstream stream(
      "$ORIGIN xn--fiqs8s.\n"
      "xn--55qx5d IN NS ns1.cnnic.cn\n"
      "ascii-label IN NS ns1.cnnic.cn\n");
  std::size_t idns = 0;
  auto stats = scan_zone_stream(
      stream, [&](std::string_view, bool is_idn) { idns += is_idn; });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(idns, 2U);  // everything under an iTLD is an IDN
}

TEST(ZoneIo, StreamScanHandlesMissingFinalNewline) {
  // The last line of a snapshot is often cut without a trailing '\n'; it
  // must scan exactly like a terminated line.
  const std::string with_newline =
      "$ORIGIN com.\na IN NS ns1.h.net\nb IN NS ns1.h.net\n";
  const std::string without_newline =
      "$ORIGIN com.\na IN NS ns1.h.net\nb IN NS ns1.h.net";
  for (const std::string* text : {&with_newline, &without_newline}) {
    std::istringstream stream(*text);
    std::vector<std::string> streamed;
    auto stats = scan_zone_stream(
        stream, [&](std::string_view domain, bool) {
          streamed.emplace_back(domain);
        });
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().record_lines, 2U);
    EXPECT_EQ(streamed, (std::vector<std::string>{"a.com", "b.com"}));
  }
}

// --- sharded scanner ---------------------------------------------------------

struct CollectedScan {
  ZoneScanStats stats;
  std::vector<std::pair<std::string, bool>> slds;
  std::vector<std::size_t> batch_sizes;
};

CollectedScan collect_sharded(std::string_view text,
                              const ZoneScanOptions& options) {
  CollectedScan out;
  auto scanned = scan_zone_buffer(text, options, [&](const SldBatch& batch) {
    out.batch_sizes.push_back(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out.slds.emplace_back(std::string(batch.domains[i]),
                            batch.is_idn[i] != 0);
    }
  });
  EXPECT_TRUE(scanned.ok()) << scanned.error().message;
  if (scanned.ok()) {
    out.stats = scanned.value();
  }
  return out;
}

CollectedScan collect_serial(std::string_view text) {
  CollectedScan out;
  std::istringstream stream{std::string(text)};
  auto scanned =
      scan_zone_stream(stream, [&](std::string_view domain, bool is_idn) {
        out.slds.emplace_back(std::string(domain), is_idn);
      });
  EXPECT_TRUE(scanned.ok()) << scanned.error().message;
  if (scanned.ok()) {
    out.stats = scanned.value();
  }
  return out;
}

TEST(ZoneIoSharded, MatchesSerialOnGeneratedZoneAtAnyGeometry) {
  auto scenario = ecosystem::Scenario::tiny();
  scenario.generate_filler = true;
  const auto eco = ecosystem::generate(scenario);
  const std::string text = serialize_zone(eco.zones[0]);
  const CollectedScan serial = collect_serial(text);
  ASSERT_FALSE(serial.slds.empty());
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::size_t shard_bytes :
         {std::size_t{64}, std::size_t{512}, kZoneShardBytes}) {
      const CollectedScan sharded =
          collect_sharded(text, ZoneScanOptions{threads, shard_bytes, 7});
      EXPECT_EQ(serial.slds, sharded.slds)
          << "threads=" << threads << " shard_bytes=" << shard_bytes;
      EXPECT_EQ(serial.stats.origin, sharded.stats.origin);
      EXPECT_EQ(serial.stats.record_lines, sharded.stats.record_lines);
      EXPECT_EQ(serial.stats.distinct_slds, sharded.stats.distinct_slds);
      EXPECT_EQ(serial.stats.idns, sharded.stats.idns);
    }
  }
}

TEST(ZoneIoSharded, DeduplicatesAcrossShardSeams) {
  // shard_bytes=32 puts the repeats of "alpha" in different shards; the
  // boundary merge must keep only the first appearance.
  const std::string text =
      "$ORIGIN com.\n"
      "alpha 86400 IN NS ns1.h.net\n"
      "beta 86400 IN NS ns1.h.net\n"
      "alpha 86400 IN NS ns2.h.net\n"
      "gamma 86400 IN NS ns1.h.net\n"
      "alpha 86400 IN NS ns3.h.net\n";
  const CollectedScan sharded =
      collect_sharded(text, ZoneScanOptions{2, 32, 4096});
  EXPECT_EQ(sharded.stats.distinct_slds, 3U);
  EXPECT_EQ(sharded.stats.record_lines, 5U);
  ASSERT_EQ(sharded.slds.size(), 3U);
  EXPECT_EQ(sharded.slds[0].first, "alpha.com");
  EXPECT_EQ(sharded.slds[1].first, "beta.com");
  EXPECT_EQ(sharded.slds[2].first, "gamma.com");
}

TEST(ZoneIoSharded, RespectsBatchSizeAndReportsTotal) {
  std::string text = "$ORIGIN com.\n";
  for (int i = 0; i < 10; ++i) {
    text += "owner" + std::to_string(i) + " IN NS ns1.h.net\n";
  }
  std::size_t total_distinct = 0;
  auto scanned = scan_zone_buffer(
      text, ZoneScanOptions{1, kZoneShardBytes, 4},
      [&](const SldBatch& batch) {
        EXPECT_LE(batch.size(), 4U);
        total_distinct = batch.total_distinct;
      });
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(total_distinct, 10U);
  EXPECT_EQ(scanned.value().distinct_slds, 10U);
}

TEST(ZoneIoSharded, MissingFinalNewlineMatchesSerial) {
  const std::string text =
      "$ORIGIN com.\na IN NS ns1.h.net\nb IN NS ns1.h.net";
  const CollectedScan serial = collect_serial(text);
  const CollectedScan sharded =
      collect_sharded(text, ZoneScanOptions{2, 16, 4096});
  EXPECT_EQ(serial.slds, sharded.slds);
  EXPECT_EQ(serial.stats.record_lines, sharded.stats.record_lines);
  EXPECT_EQ(serial.stats.distinct_slds, sharded.stats.distinct_slds);
}

TEST(ZoneIoSharded, ErrorParityWithSerial) {
  const std::string no_origin = "a.com. IN NS ns1.h.net\n";
  auto sharded = scan_zone_buffer(no_origin, ZoneScanOptions{},
                                  [](const SldBatch&) {});
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.error().code, "zone.no_origin");

  const std::string bad = "$ORIGIN com.\na IN NS ns1.h.net\n$ORIGIN a b\n";
  std::istringstream stream(bad);
  auto serial = scan_zone_stream(stream, [](std::string_view, bool) {});
  auto sharded_bad =
      scan_zone_buffer(bad, ZoneScanOptions{2, 16, 4096}, [](const SldBatch&) {});
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(sharded_bad.ok());
  EXPECT_EQ(serial.error().code, sharded_bad.error().code);
  EXPECT_EQ(serial.error().message, sharded_bad.error().message);
  EXPECT_NE(sharded_bad.error().message.find("line 3"), std::string::npos);
}

TEST(ZoneIo, EndToEndWithGeneratedZone) {
  // Serialize a generated org zone to disk, stream-scan it, and compare
  // with the in-memory pipeline — the workflow for real zone snapshots.
  auto scenario = ecosystem::Scenario::tiny();
  scenario.generate_filler = true;
  const auto eco = ecosystem::generate(scenario);
  const Zone& org = eco.zones[2];
  TempFile file("generated");
  ASSERT_TRUE(write_zone_file(org, file.path()).ok());

  std::vector<std::string> streamed_idns;
  auto stats = scan_zone_file(file.path(),
                              [&](std::string_view domain, bool is_idn) {
                                if (is_idn) {
                                  streamed_idns.emplace_back(domain);
                                }
                              });
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(streamed_idns, scan_idns(org));
  EXPECT_EQ(stats.value().distinct_slds, scan_slds(org).size());
}

}  // namespace
}  // namespace idnscope::dns
