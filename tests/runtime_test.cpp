// Runtime layer tests: DomainTable interning and the determinism contract
// of the shared parallel executor (results identical at 1, 2 and 8 threads).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "idnscope/core/availability.h"
#include "idnscope/core/homograph.h"
#include "idnscope/obs/metrics.h"
#include "idnscope/runtime/domain_table.h"
#include "idnscope/runtime/parallel.h"

namespace idnscope {
namespace {

TEST(DomainTable, InternLookupRoundTrip) {
  runtime::DomainTable table;
  std::vector<runtime::DomainId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(table.intern("domain-" + std::to_string(i) + ".com"));
  }
  ASSERT_EQ(table.size(), 5000U);
  for (int i = 0; i < 5000; ++i) {
    const std::string expected = "domain-" + std::to_string(i) + ".com";
    EXPECT_EQ(table.str(ids[i]), expected);
    EXPECT_EQ(table.find(expected), ids[i]);
  }
  EXPECT_EQ(table.find("never-interned.org"), runtime::kInvalidDomainId);
  EXPECT_FALSE(table.contains("never-interned.org"));
}

TEST(DomainTable, ReinternReturnsSameIdAndKeepsSideTables) {
  runtime::DomainTable table;
  const runtime::DomainId id = table.intern("xn--74h.net");
  table.set_tld_group(id, 1);
  table.set_blacklist_mask(id, 5);
  table.set_registered(id, true);
  table.set_idn(id, true);
  EXPECT_EQ(table.intern("xn--74h.net"), id);
  EXPECT_EQ(table.size(), 1U);
  EXPECT_EQ(table.tld_group(id), 1);
  EXPECT_EQ(table.blacklist_mask(id), 5);
  EXPECT_TRUE(table.is_registered(id));
  EXPECT_TRUE(table.is_idn(id));
  table.set_registered(id, false);
  EXPECT_FALSE(table.is_registered(id));
  EXPECT_TRUE(table.is_idn(id));  // flags are independent bits
}

TEST(DomainTable, StrViewsFollowTheRingContract) {
  // The front-coded arena decodes on demand: a str() view lives until the
  // calling thread's 8th subsequent str() call, and intern()/find() never
  // touch the ring (domain_table.h "Views are transient").
  runtime::DomainTable table;
  const runtime::DomainId first = table.intern("first.com");
  // Force many blocks and index rehashes.
  for (int i = 0; i < 20000; ++i) {
    table.intern("filler-" + std::to_string(i) + ".example.org");
  }
  const std::string_view view = table.str(first);
  ASSERT_EQ(table.find("filler-19999.example.org"), 20000U);
  EXPECT_EQ(table.intern("filler-0.example.org"), 1U);
  EXPECT_EQ(view, "first.com");  // lookups and re-interns left it intact
  for (int i = 0; i < 7; ++i) {  // seven further views: ring not yet reused
    (void)table.str(static_cast<runtime::DomainId>(i + 1));
  }
  EXPECT_EQ(view, "first.com");
  EXPECT_EQ(table.find("first.com"), 0U);
  // Two simultaneously live views — the sort-comparator shape.
  const std::string_view a = table.str(first);
  const std::string_view b = table.str(1U);
  EXPECT_EQ(a, "first.com");
  EXPECT_EQ(b, "filler-0.example.org");
}

TEST(DomainTable, RingViewPinAllowsSevenFurtherViews) {
  // A RingViewPin protects the most recent view on this thread: the seven
  // ring slots that remain may be recycled freely, and once the pin is
  // gone the full window is available again (domain_table.h).
  runtime::DomainTable table;
  for (int i = 0; i < 32; ++i) {
    table.intern("pin-" + std::to_string(i) + ".example.org");
  }
  const std::string_view held = table.str(0U);
  {
    const runtime::RingViewPin pin;
    for (runtime::DomainId id = 1; id <= 7; ++id) {
      (void)table.str(id);  // exactly fills the unpinned slots
    }
    EXPECT_EQ(held, "pin-0.example.org");
  }
  for (runtime::DomainId id = 8; id <= 20; ++id) {
    (void)table.str(id);  // pin released: recycling `held` is legal again
  }
  // Nested pins restore LIFO: the inner pin must not widen the outer's
  // protection when it dies.
  const std::string_view outer_held = table.str(0U);
  {
    const runtime::RingViewPin outer;
    (void)table.str(1U);
    {
      const runtime::RingViewPin inner;
      (void)table.str(2U);
    }
    for (runtime::DomainId id = 3; id <= 7; ++id) {
      (void)table.str(id);
    }
    EXPECT_EQ(outer_held, "pin-0.example.org");
  }
}

TEST(DomainTableDeathTest, RingViewPinOverrunAbortsLoudly) {
  // The 8th str() after a pinned view would recycle the pinned slot and
  // leave the caller reading freed bytes — the serve batch-probe bug this
  // check exists for.  It must die loudly, not corrupt silently, and the
  // check is always compiled (NDEBUG erases assert, not this).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  runtime::DomainTable table;
  for (int i = 0; i < 16; ++i) {
    table.intern("overrun-" + std::to_string(i) + ".example.org");
  }
  EXPECT_DEATH(
      {
        const std::string_view held = table.str(0U);
        const runtime::RingViewPin pin;
        for (runtime::DomainId id = 1; id <= 8; ++id) {
          (void)table.str(id);
        }
        (void)held;
      },
      "view ring overrun");
}

TEST(DomainTable, CapacityGuardFailsLoudly) {
  runtime::DomainTable table;
  table.set_max_entries(3);
  const obs::Counter interned =
      obs::Registry::global().counter("runtime.domain_table.interned");
  EXPECT_EQ(table.intern("a.com"), 0U);
  EXPECT_EQ(table.intern("b.com"), 1U);
  EXPECT_EQ(table.intern("c.com"), 2U);
  EXPECT_FALSE(table.capacity_error().has_value());
  const std::uint64_t interned_at_cap = interned.value();

  EXPECT_EQ(table.intern("d.com"), runtime::kInvalidDomainId);
  ASSERT_TRUE(table.capacity_error().has_value());
  EXPECT_EQ(table.capacity_error()->code, "domain_table.capacity");
  EXPECT_EQ(interned.value(), interned_at_cap);  // failures are not coverage
  EXPECT_EQ(table.size(), 3U);
  EXPECT_FALSE(table.contains("d.com"));
  EXPECT_EQ(table.intern("b.com"), 1U);  // existing entries still resolve

  const auto checked = table.try_intern("e.com");
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.error().code, "domain_table.capacity");

  // Batched interning reports per-slot failures instead of wrapping.
  const std::vector<std::string_view> views{"a.com", "f.com", "c.com"};
  std::vector<runtime::DomainId> ids(views.size());
  table.intern_batch(views, ids.data());
  EXPECT_EQ(ids[0], 0U);
  EXPECT_EQ(ids[1], runtime::kInvalidDomainId);
  EXPECT_EQ(ids[2], 2U);
  EXPECT_EQ(table.size(), 3U);
}

TEST(DomainTable, ResolveMaterializesInOrder) {
  runtime::DomainTable table;
  const runtime::DomainId a = table.intern("a.com");
  const runtime::DomainId b = table.intern("b.net");
  const std::vector<runtime::DomainId> ids{b, a, b};
  const auto strings = table.resolve(ids);
  ASSERT_EQ(strings.size(), 3U);
  EXPECT_EQ(strings[0], "b.net");
  EXPECT_EQ(strings[1], "a.com");
  EXPECT_EQ(strings[2], "b.net");
}

TEST(DomainTable, InternBatchMatchesSequentialIntern) {
  // Batched interning is an amortization, not a semantic change: same ids,
  // same table contents, same metric totals as one intern() per string.
  std::vector<std::string> domains;
  for (int i = 0; i < 500; ++i) {
    domains.push_back("batch-" + std::to_string(i % 200) + ".com");
  }
  std::vector<std::string_view> views(domains.begin(), domains.end());

  obs::Registry::global().reset();
  runtime::DomainTable sequential;
  std::vector<runtime::DomainId> expected_ids;
  for (const std::string& domain : domains) {
    expected_ids.push_back(sequential.intern(domain));
  }
  const auto hits = obs::Registry::global().counter("runtime.domain_table.hits");
  const auto interned =
      obs::Registry::global().counter("runtime.domain_table.interned");
  const std::uint64_t sequential_hits = hits.value();
  const std::uint64_t sequential_interned = interned.value();

  obs::Registry::global().reset();
  runtime::DomainTable batched;
  batched.reserve(domains.size());
  std::vector<runtime::DomainId> batch_ids(views.size());
  batched.intern_batch(views, batch_ids.data());
  EXPECT_EQ(batch_ids, expected_ids);
  EXPECT_EQ(batched.size(), sequential.size());
  EXPECT_EQ(hits.value(), sequential_hits);
  EXPECT_EQ(interned.value(), sequential_interned);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(batched.str(batch_ids[i]), views[i]);
  }
}

TEST(DomainTable, InternBatchAdversarialInputsMatchSequential) {
  // Duplicate-heavy and adversarial batch shapes — an all-duplicates run,
  // interleaved new/old entries, and an empty batch — must leave ids,
  // metric totals and the front-coded arena byte-identical to per-string
  // interning.
  std::vector<std::string> domains;
  for (int i = 0; i < 64; ++i) {
    domains.push_back("dup.com");  // all-duplicates prefix
  }
  for (int i = 0; i < 200; ++i) {  // interleaved new/old
    domains.push_back(i % 2 == 0 ? "new-" + std::to_string(i) + ".net"
                                 : "dup.com");
  }
  for (int i = 0; i < 50; ++i) {  // re-intern everything again, reversed
    domains.push_back(domains[49 - i]);
  }
  std::vector<std::string_view> views(domains.begin(), domains.end());

  obs::Registry::global().reset();
  runtime::DomainTable sequential;
  std::vector<runtime::DomainId> expected_ids;
  for (const std::string& domain : domains) {
    expected_ids.push_back(sequential.intern(domain));
  }
  const auto hits = obs::Registry::global().counter("runtime.domain_table.hits");
  const auto interned =
      obs::Registry::global().counter("runtime.domain_table.interned");
  const auto arena_bytes =
      obs::Registry::global().gauge("runtime.domain_table.arena_bytes");
  const auto index_bytes =
      obs::Registry::global().gauge("runtime.domain_table.index_bytes");
  const std::uint64_t sequential_hits = hits.value();
  const std::uint64_t sequential_interned = interned.value();
  const std::int64_t sequential_arena = arena_bytes.value();
  const std::int64_t sequential_index = index_bytes.value();

  obs::Registry::global().reset();
  runtime::DomainTable batched;
  batched.intern_batch({}, nullptr);  // empty batch: no effect, no metrics
  EXPECT_EQ(interned.value(), 0U);
  std::vector<runtime::DomainId> batch_ids(views.size());
  batched.intern_batch(views, batch_ids.data());
  EXPECT_EQ(batch_ids, expected_ids);
  EXPECT_EQ(batched.size(), sequential.size());
  EXPECT_EQ(hits.value(), sequential_hits);
  EXPECT_EQ(interned.value(), sequential_interned);
  EXPECT_EQ(arena_bytes.value(), sequential_arena);
  EXPECT_EQ(index_bytes.value(), sequential_index);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(batched.str(batch_ids[i]), views[i]);
  }
}

TEST(DomainTable, InternBatchAcceptsEmptyAndRepeatedBatches) {
  runtime::DomainTable table;
  table.intern_batch({}, nullptr);
  EXPECT_EQ(table.size(), 0U);
  const std::vector<std::string_view> views{"a.com", "a.com", "b.com"};
  std::vector<runtime::DomainId> ids(views.size());
  table.intern_batch(views, ids.data());
  EXPECT_EQ(table.size(), 2U);
  EXPECT_EQ(ids[0], ids[1]);
  std::vector<runtime::DomainId> again(views.size());
  table.intern_batch(views, again.data());
  EXPECT_EQ(table.size(), 2U);
  EXPECT_EQ(again, ids);
}

TEST(Parallel, ResolveThreadsClampsToItems) {
  EXPECT_EQ(runtime::resolve_threads(8, 3), 3U);
  EXPECT_EQ(runtime::resolve_threads(8, 0), 1U);
  EXPECT_EQ(runtime::resolve_threads(8, 1), 1U);
  EXPECT_EQ(runtime::resolve_threads(2, 1000), 2U);
  EXPECT_GE(runtime::resolve_threads(0, 1000), 1U);
  EXPECT_LE(runtime::resolve_threads(0, 1000), runtime::kMaxThreads);
}

TEST(Parallel, ForCoversEveryIndexOnce) {
  for (unsigned threads : {1U, 2U, 8U}) {
    std::vector<int> hits(10007, 0);
    runtime::parallel_for(hits.size(), threads,
                          [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(hits.size()))
        << "threads=" << threads;
    for (int hit : hits) {
      ASSERT_EQ(hit, 1);
    }
  }
}

TEST(Parallel, FloatReductionIsBitIdenticalAcrossThreadCounts) {
  // Non-associative combine (double addition): the fixed chunking must make
  // the result a pure function of the item count.
  auto run = [](unsigned threads) {
    return runtime::parallel_reduce(
        100000, threads, 0.0,
        [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); },
        [](double a, double b) { return a + b; });
  };
  const double at1 = run(1);
  const double at2 = run(2);
  const double at8 = run(8);
  EXPECT_EQ(at1, at2);  // bit-for-bit, not EXPECT_NEAR
  EXPECT_EQ(at1, at8);
}

TEST(Parallel, ExecutorMetricsMatchChunkMath) {
  // The dispatch counters are defined as chunk *math* — ceil(count/chunk)
  // per call, a pure function of the workload — so they must come out
  // identical whether the executor runs serial, with 2 workers or with 8.
  const obs::Counter invocations =
      obs::Registry::global().counter("runtime.parallel.invocations");
  const obs::Counter items =
      obs::Registry::global().counter("runtime.parallel.items");
  const obs::Counter chunks =
      obs::Registry::global().counter("runtime.parallel.chunks");
  const std::vector<std::size_t> counts{0, 1, 63, 64, 65, 10007};
  for (unsigned threads : {1U, 2U, 8U}) {
    obs::Registry::global().reset();
    std::size_t expected_items = 0;
    std::size_t expected_chunks = 0;
    for (const std::size_t count : counts) {
      runtime::parallel_for(count, threads, [](std::size_t) {});
      expected_items += count;
      expected_chunks +=
          (count + runtime::kParallelChunk - 1) / runtime::kParallelChunk;
    }
    EXPECT_EQ(invocations.value(), counts.size()) << "threads=" << threads;
    EXPECT_EQ(items.value(), expected_items) << "threads=" << threads;
    EXPECT_EQ(chunks.value(), expected_chunks) << "threads=" << threads;
  }
}

TEST(Parallel, ForGrainCoversEveryIndexOnceAndCountsChunks) {
  // grain=1 is what the sharded zone scanner uses: a handful of coarse work
  // items must still fan out instead of collapsing into one kParallelChunk.
  const obs::Counter chunks =
      obs::Registry::global().counter("runtime.parallel.chunks");
  for (unsigned threads : {1U, 2U, 8U}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3}}) {
      obs::Registry::global().reset();
      std::vector<int> hits(11, 0);
      runtime::parallel_for_grain(hits.size(), threads, grain,
                                  [&](std::size_t i) { ++hits[i]; });
      for (int hit : hits) {
        ASSERT_EQ(hit, 1) << "threads=" << threads << " grain=" << grain;
      }
      EXPECT_EQ(chunks.value(), (hits.size() + grain - 1) / grain)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

TEST(Parallel, ReduceSurfacesAsInvocationOverChunks) {
  // parallel_reduce is built on parallel_for over the chunk indices, so one
  // reduce over N items records one invocation of ceil(N/chunk) items.
  const obs::Counter invocations =
      obs::Registry::global().counter("runtime.parallel.invocations");
  const obs::Counter items =
      obs::Registry::global().counter("runtime.parallel.items");
  obs::Registry::global().reset();
  const std::size_t count = 1000;
  const std::size_t chunks =
      (count + runtime::kParallelChunk - 1) / runtime::kParallelChunk;
  const auto total = runtime::parallel_reduce(
      count, 4, std::uint64_t{0}, [](std::size_t i) { return std::uint64_t{i}; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, count * (count - 1) / 2);
  EXPECT_EQ(invocations.value(), 1U);
  EXPECT_EQ(items.value(), chunks);
}

TEST(Parallel, ForPropagatesExceptions) {
  EXPECT_THROW(
      runtime::parallel_for(1000, 4,
                            [](std::size_t i) {
                              if (i == 777) {
                                throw std::runtime_error("boom");
                              }
                            }),
      std::runtime_error);
}

// --- end-to-end determinism over the real pipeline -------------------------

const ecosystem::Ecosystem& tiny_eco() {
  static const ecosystem::Ecosystem eco =
      ecosystem::generate(ecosystem::Scenario::tiny());
  return eco;
}

const core::Study& tiny_study() {
  static const core::Study study(tiny_eco());
  return study;
}

TEST(RuntimeDeterminism, HomographScanIdenticalAt1_2_8Threads) {
  std::vector<std::vector<core::HomographMatch>> runs;
  for (unsigned threads : {1U, 2U, 8U}) {
    core::HomographOptions options;
    options.threads = threads;
    const core::HomographDetector detector(ecosystem::alexa_top(200), options);
    runs.push_back(detector.scan(tiny_study().table(), tiny_study().idns()));
  }
  ASSERT_FALSE(runs[0].empty());
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].domain, runs[0][i].domain);
      EXPECT_EQ(runs[run][i].brand, runs[0][i].brand);
      EXPECT_EQ(runs[run][i].ssim, runs[0][i].ssim);  // bit-for-bit
      EXPECT_EQ(runs[run][i].identical, runs[0][i].identical);
    }
  }
}

TEST(RuntimeDeterminism, AvailabilitySweepIdenticalAt1_2_8Threads) {
  std::vector<core::AvailabilityReport> runs;
  for (unsigned threads : {1U, 2U, 8U}) {
    core::AvailabilityOptions options;
    options.threads = threads;
    runs.push_back(core::availability_sweep(tiny_study(),
                                            ecosystem::alexa_top(12), options));
  }
  ASSERT_FALSE(runs[0].per_brand.empty());
  for (std::size_t run = 1; run < runs.size(); ++run) {
    EXPECT_EQ(runs[run].total_candidates, runs[0].total_candidates);
    EXPECT_EQ(runs[run].total_homographic, runs[0].total_homographic);
    EXPECT_EQ(runs[run].total_registered, runs[0].total_registered);
    ASSERT_EQ(runs[run].per_brand.size(), runs[0].per_brand.size());
    for (std::size_t i = 0; i < runs[0].per_brand.size(); ++i) {
      EXPECT_EQ(runs[run].per_brand[i].brand, runs[0].per_brand[i].brand);
      EXPECT_EQ(runs[run].per_brand[i].candidates,
                runs[0].per_brand[i].candidates);
      EXPECT_EQ(runs[run].per_brand[i].homographic,
                runs[0].per_brand[i].homographic);
      EXPECT_EQ(runs[run].per_brand[i].registered,
                runs[0].per_brand[i].registered);
      EXPECT_EQ(runs[run].per_brand[i].available_samples,
                runs[0].per_brand[i].available_samples);
    }
  }
}

}  // namespace
}  // namespace idnscope
