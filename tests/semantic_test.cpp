// Type-1 semantic detector tests.
#include <gtest/gtest.h>

#include <set>

#include "idnscope/core/semantic.h"
#include "idnscope/idna/idna.h"
#include "idnscope/unicode/utf8.h"

namespace idnscope::core {
namespace {

const ecosystem::Ecosystem& tiny_eco() {
  static const ecosystem::Ecosystem eco =
      ecosystem::generate(ecosystem::Scenario::tiny());
  return eco;
}

const Study& tiny_study() {
  static const Study study(tiny_eco());
  return study;
}

const SemanticDetector& detector() {
  static const SemanticDetector instance(ecosystem::alexa_top1k());
  return instance;
}

std::string type1(const char* brand_sld, const char* keyword,
                  const char* suffix = ".com") {
  auto decoded = unicode::decode(std::string(brand_sld) + keyword);
  auto ace = idna::label_to_ascii(decoded.value());
  return ace.value() + suffix;
}

TEST(Semantic, DetectsBrandPlusKeyword) {
  const auto match = detector().match(type1("apple", "邮箱"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->brand, "apple.com");
  EXPECT_EQ(match->keyword_utf8, "邮箱");
}

TEST(Semantic, DetectsKeywordPrefixToo) {
  // The ASCII remainder is what matters, not keyword position.
  const auto match = detector().match(type1("", "售后58"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->brand, "58.com");
}

TEST(Semantic, DigitBrand) {
  const auto match = detector().match(type1("58", "汽车"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->brand, "58.com");
  EXPECT_EQ(match->keyword_utf8, "汽车");
}

TEST(Semantic, RequiresTldAgreement) {
  EXPECT_FALSE(detector().match(type1("apple", "邮箱", ".net")).has_value());
  // craigslist.org is an .org brand: .org matches, .com does not.
  EXPECT_TRUE(detector().match(type1("craigslist", "登录", ".org")).has_value());
  EXPECT_FALSE(detector().match(type1("craigslist", "登录", ".com")).has_value());
}

TEST(Semantic, RejectsNonIdn) {
  EXPECT_FALSE(detector().match("applemail.com").has_value());
  EXPECT_FALSE(detector().match("apple.com").has_value());
}

TEST(Semantic, RejectsKeywordOnlyIdn) {
  EXPECT_FALSE(detector().match(type1("", "登录")).has_value());
}

TEST(Semantic, RejectsNonBrandAsciiPart) {
  EXPECT_FALSE(detector().match(type1("zzznotabrand", "登录")).has_value());
}

TEST(Semantic, RejectsHomographs) {
  // A homograph replaces brand characters, so the ASCII remainder is not
  // the brand: "аpple" (Cyrillic а) strips to "pple".
  auto decoded = unicode::decode("аpple");
  auto ace = idna::label_to_ascii(decoded.value());
  EXPECT_FALSE(detector().match(ace.value() + ".com").has_value());
}

TEST(Semantic, FindsAllPlants) {
  const auto matches = detector().scan(tiny_study().table(), tiny_study().idns());
  std::set<std::string> matched;
  for (const SemanticMatch& match : matches) {
    matched.insert(match.domain);
  }
  for (const auto& [domain, truth] : tiny_eco().truth) {
    if (truth.abuse == ecosystem::AbuseKind::kSemanticT1) {
      EXPECT_TRUE(matched.contains(domain)) << domain;
    }
  }
}

TEST(Semantic, MatchedBrandAgreesWithPlantTarget) {
  for (const SemanticMatch& match : detector().scan(tiny_study().table(), tiny_study().idns())) {
    auto it = tiny_eco().truth.find(match.domain);
    ASSERT_NE(it, tiny_eco().truth.end());
    if (it->second.abuse == ecosystem::AbuseKind::kSemanticT1) {
      EXPECT_EQ(match.brand, it->second.target_brand) << match.domain;
    }
  }
}

TEST(Semantic, ReportAggregates) {
  const auto report = analyze_semantics(tiny_study(), detector(), 10);
  EXPECT_FALSE(report.matches.empty());
  EXPECT_GT(report.brands_targeted, 0U);
  for (std::size_t i = 1; i < report.top_brands.size(); ++i) {
    EXPECT_GE(report.top_brands[i - 1].idn_count,
              report.top_brands[i].idn_count);
  }
  // 58.com is the paper's (and our generator's) dominant target.
  ASSERT_FALSE(report.top_brands.empty());
  EXPECT_EQ(report.top_brands[0].brand, "58.com");
}

}  // namespace
}  // namespace idnscope::core
