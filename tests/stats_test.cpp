// ECDF and table-formatting tests.
#include <gtest/gtest.h>

#include "idnscope/stats/ecdf.h"
#include "idnscope/stats/table.h"

namespace idnscope::stats {
namespace {

TEST(Ecdf, FractionAt) {
  Ecdf ecdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(1.0), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(3.0), 0.6);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(4.9), 0.8);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(100.0), 1.0);
}

TEST(Ecdf, EmptySample) {
  Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(1.0), 0.0);
}

TEST(Ecdf, IncrementalAdd) {
  Ecdf ecdf;
  ecdf.add(3.0);
  ecdf.add(1.0);
  ecdf.add(2.0);
  EXPECT_EQ(ecdf.size(), 3U);
  EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 2.0);
  EXPECT_DOUBLE_EQ(ecdf.median(), 2.0);
  // add() after sorting keeps correctness.
  ecdf.add(0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(0.0), 0.25);
}

TEST(Ecdf, Quantiles) {
  Ecdf ecdf({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.1), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 100.0);
}

TEST(Ecdf, QuantileFractionInverse) {
  Ecdf ecdf({5, 1, 9, 3, 7, 2, 8, 4, 6, 10});
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    EXPECT_GE(ecdf.fraction_at(ecdf.quantile(q)), q);
  }
}

TEST(Ecdf, Evaluate) {
  Ecdf ecdf({1, 2, 3, 4});
  const auto values = ecdf.evaluate({0, 2, 5});
  ASSERT_EQ(values.size(), 3U);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_DOUBLE_EQ(values[1], 0.5);
  EXPECT_DOUBLE_EQ(values[2], 1.0);
}

TEST(Ecdf, LogGrid) {
  Ecdf ecdf({1, 10, 100, 1000});
  const auto grid = ecdf.log_grid(4);
  ASSERT_EQ(grid.size(), 4U);
  EXPECT_NEAR(grid[0], 1.0, 1e-9);
  EXPECT_NEAR(grid[3], 1000.0, 1e-6);
  EXPECT_NEAR(grid[1], 10.0, 1e-6);
}

TEST(Ecdf, FormatTable) {
  Ecdf a({1, 2, 3});
  Ecdf b({2, 4, 6});
  const std::string table =
      format_ecdf_table({1, 3, 6}, {{"a", &a}, {"b", &b}}, "x");
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("1.0000"), std::string::npos);
}

TEST(Table, AlignedOutput) {
  Table table({"name", "count"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "22222"});
  table.add_row({"short"});  // missing cell filled
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_EQ(table.row_count(), 3U);
  // Every line has the same width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1472836), "1,472,836");
  EXPECT_EQ(format_count(154600404), "154,600,404");
}

TEST(Format, PercentAndFixed) {
  EXPECT_EQ(format_percent(0.5203), "52.03%");
  EXPECT_EQ(format_percent(1.0), "100.00%");
  EXPECT_EQ(format_fixed(0.95, 2), "0.95");
  EXPECT_EQ(format_fixed(3.14159, 4), "3.1416");
}

}  // namespace
}  // namespace idnscope::stats
