// Language identifier tests: per-language accuracy on the ecosystem word
// pools (a superset of the training corpora) and the feature ablation.
#include <gtest/gtest.h>

#include "idnscope/ecosystem/vocab.h"
#include "idnscope/langid/classifier.h"

namespace idnscope::langid {
namespace {

TEST(Language, NamesRoundTrip) {
  for (Language lang : all_languages()) {
    auto back = language_from_name(language_name(lang));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, lang);
  }
  EXPECT_FALSE(language_from_name("Klingon").has_value());
}

TEST(Language, EastAsianSet) {
  EXPECT_TRUE(is_east_asian(Language::kChinese));
  EXPECT_TRUE(is_east_asian(Language::kJapanese));
  EXPECT_TRUE(is_east_asian(Language::kKorean));
  EXPECT_TRUE(is_east_asian(Language::kThai));
  EXPECT_FALSE(is_east_asian(Language::kGerman));
  EXPECT_FALSE(is_east_asian(Language::kRussian));
}

TEST(Classifier, TrainsAndIsDeterministic) {
  NaiveBayesClassifier a;
  a.train(seed_corpus());
  NaiveBayesClassifier b;
  b.train(seed_corpus());
  EXPECT_EQ(a.classify("münchen").language, b.classify("münchen").language);
  EXPECT_TRUE(a.trained());
}

TEST(Classifier, PosteriorsSumToOne) {
  const auto posteriors = default_classifier().posteriors("中文域名");
  double sum = 0.0;
  for (double p : posteriors) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

struct LangCase {
  Language lang;
  const char* text;
};

class ObviousTextTest : public ::testing::TestWithParam<LangCase> {};

TEST_P(ObviousTextTest, Identified) {
  EXPECT_EQ(identify(GetParam().text), GetParam().lang) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    ScriptDominant, ObviousTextTest,
    ::testing::Values(LangCase{Language::kChinese, "网络商城"},
                      LangCase{Language::kJapanese, "さくらホテル"},
                      LangCase{Language::kKorean, "서울쇼핑몰"},
                      LangCase{Language::kThai, "โรงแรมกรุงเทพ"},
                      LangCase{Language::kRussian, "московскиеновости"},
                      LangCase{Language::kArabic, "مدرسةالتجارة"},
                      LangCase{Language::kPersian, "پژوهشگاه"},
                      LangCase{Language::kGerman, "müller-straße"},
                      LangCase{Language::kTurkish, "şehiriçialışveriş"},
                      LangCase{Language::kSpanish, "señorespañol"},
                      LangCase{Language::kFrench, "châteauforêt"},
                      LangCase{Language::kHungarian, "gyönyörűgyümölcs"},
                      LangCase{Language::kEnglish, "online-shop"}));

// Accuracy over the ecosystem word pools — a *superset* of the training
// corpora, so this measures generalization to unseen words too.  The paper
// reports LangID accuracy between 0.904 and 0.992 per dataset; the
// script-dominant languages here should be near-perfect, Latin-script
// languages are allowed more confusion.
class VocabAccuracyTest : public ::testing::TestWithParam<Language> {};

TEST_P(VocabAccuracyTest, MajorityOfPoolWordsIdentified) {
  const Language lang = GetParam();
  const auto words = ecosystem::words_for(lang);
  int hits = 0;
  for (std::string_view word : words) {
    if (identify(word) == lang) {
      ++hits;
    }
  }
  const double accuracy =
      static_cast<double>(hits) / static_cast<double>(words.size());
  const bool script_dominant =
      lang == Language::kChinese || lang == Language::kKorean ||
      lang == Language::kThai || lang == Language::kRussian ||
      lang == Language::kArabic;
  EXPECT_GE(accuracy, script_dominant ? 0.9 : 0.6)
      << language_name(lang) << " accuracy " << accuracy;
}

INSTANTIATE_TEST_SUITE_P(
    AllLanguages, VocabAccuracyTest, ::testing::ValuesIn(all_languages()),
    [](const auto& info) { return std::string(language_name(info.param)); });

// Feature ablation (DESIGN.md): richer n-gram features must not hurt, and
// dropping everything but unigrams must cost accuracy on Latin languages.
double pool_accuracy(const NaiveBayesClassifier& model) {
  int hits = 0;
  int total = 0;
  for (Language lang : all_languages()) {
    for (std::string_view word : ecosystem::words_for(lang)) {
      if (model.classify(word).language == lang) {
        ++hits;
      }
      ++total;
    }
  }
  return static_cast<double>(hits) / total;
}

TEST(ClassifierAblation, TrigramsBeatUnigramsOnly) {
  FeatureConfig unigrams;
  unigrams.byte_bigrams = false;
  unigrams.byte_trigrams = false;
  unigrams.script_tags = false;
  NaiveBayesClassifier weak(unigrams);
  weak.train(seed_corpus());

  NaiveBayesClassifier full;
  full.train(seed_corpus());

  const double weak_accuracy = pool_accuracy(weak);
  const double full_accuracy = pool_accuracy(full);
  EXPECT_GT(full_accuracy, weak_accuracy);
  EXPECT_GE(full_accuracy, 0.80);
}

TEST(ClassifierAblation, ScriptTagsHelpShortCjkLabels) {
  FeatureConfig no_scripts;
  no_scripts.script_tags = false;
  NaiveBayesClassifier without(no_scripts);
  without.train(seed_corpus());
  NaiveBayesClassifier with;
  with.train(seed_corpus());
  // A one-character Han label carries almost no n-gram evidence.
  const auto with_scripts = with.classify("爱");
  EXPECT_EQ(with_scripts.language, Language::kChinese);
  (void)without;  // the comparison model exists to show the configs differ
  EXPECT_NE(with.config(), without.config());
}

TEST(Classifier, FeatureExtractionRespectsConfig) {
  FeatureConfig only_unigrams;
  only_unigrams.byte_bigrams = false;
  only_unigrams.byte_trigrams = false;
  only_unigrams.script_tags = false;
  const auto features = extract_features("abc", only_unigrams);
  EXPECT_EQ(features.size(), 3U);
  FeatureConfig everything;
  // 3 unigrams + 2 bigrams + 1 trigram + 3 script tags.
  EXPECT_EQ(extract_features("abc", everything).size(), 9U);
}

}  // namespace
}  // namespace idnscope::langid
