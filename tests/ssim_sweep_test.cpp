// SubstitutionScorer: the incremental SSIM engine behind the availability
// sweep must be *bit-identical* to the reference path (render_label +
// SsimReference::compare) for every single-substitution candidate.  The
// sweep's correctness argument rests entirely on this exactness (see
// docs/DETECTORS.md), so the cross-check is exhaustive over the full
// homoglyph table, not sampled.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "idnscope/render/renderer.h"
#include "idnscope/render/ssim.h"
#include "idnscope/render/ssim_sweep.h"
#include "idnscope/unicode/confusables.h"

namespace idnscope::render {
namespace {

std::u32string to_u32(std::string_view ascii) {
  std::u32string out;
  for (unsigned char c : ascii) {
    out.push_back(c);
  }
  return out;
}

// memcmp, not ==, so -0.0 vs 0.0 or NaN payloads would also be caught.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void check_brand_exhaustively(std::string_view brand) {
  const std::u32string brand_u32 = to_u32(brand);
  const RenderOptions ropt;
  const SsimOptions sopt;
  const SsimReference ref(render_label(brand_u32, ropt), sopt);
  SubstitutionScorer scorer(brand_u32, ropt, sopt);
  const std::vector<int> brand_profile = column_profile(brand_u32);

  const std::size_t sld_len = brand.find('.');
  std::size_t checked = 0;
  for (std::size_t pos = 0; pos < sld_len; ++pos) {
    for (const unicode::Homoglyph& glyph : unicode::all_homoglyphs()) {
      std::u32string display = brand_u32;
      display[pos] = glyph.code_point;
      const GrayImage image = render_label(display, ropt);
      const double expect = ref.compare(image, substitution_begin(pos, ropt),
                                        substitution_end(pos, ropt));
      const double got = scorer.score(pos, glyph.code_point);
      ASSERT_TRUE(bits_equal(expect, got))
          << brand << " pos=" << pos << " cp=U+" << std::hex
          << static_cast<std::uint32_t>(glyph.code_point) << std::dec
          << " expect=" << expect << " got=" << got;

      const std::vector<int> profile = column_profile(display);
      int l1 = 0;
      for (std::size_t i = 0; i < profile.size(); ++i) {
        l1 += std::abs(profile[i] - brand_profile[i]);
      }
      EXPECT_EQ(l1, scorer.profile_delta(pos, glyph.code_point))
          << brand << " pos=" << pos;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0U);
}

TEST(SsimSweep, BitIdenticalToReferenceGoogle) {
  check_brand_exhaustively("google.com");
}

TEST(SsimSweep, BitIdenticalToReferenceWikipedia) {
  check_brand_exhaustively("wikipedia.org");
}

TEST(SsimSweep, BitIdenticalToReferenceShortAndPunctuated) {
  check_brand_exhaustively("qq.com");
  check_brand_exhaustively("a-1z.net");
}

TEST(SsimSweep, SubstitutionWindowCoversTheCell) {
  // The window formulas are the contract between the sweep and both
  // engines: scores computed on [begin, end) must equal the full-image
  // comparison because cells render strictly locally.
  const RenderOptions ropt;
  const std::u32string brand = to_u32("payment.com");
  const SsimReference ref(render_label(brand, ropt), SsimOptions{});
  std::u32string display = brand;
  display[2] = U'ý';  // y with acute
  const GrayImage image = render_label(display, ropt);
  const double windowed = ref.compare(image, substitution_begin(2, ropt),
                                      substitution_end(2, ropt));
  const double full = ref.compare(image, 0, image.width());
  EXPECT_TRUE(bits_equal(windowed, full));
}

TEST(SsimSweep, IdenticalTwinScoresExactlyOne) {
  const std::u32string brand = to_u32("apple.com");
  SubstitutionScorer scorer(brand, RenderOptions{}, SsimOptions{});
  // Cyrillic а is a pixel-identical twin of 'a' in this font.
  EXPECT_EQ(scorer.score(0, U'а'), 1.0);
}

TEST(SsimSweep, RepeatedCallsDoNotDrift) {
  // score() restores every scratch buffer after each call; interleaving
  // positions and glyphs must not change any result.
  const std::u32string brand = to_u32("amazon.com");
  const RenderOptions ropt;
  const SsimOptions sopt;
  SubstitutionScorer scorer(brand, ropt, sopt);
  const char32_t glyphs[] = {U'à', U'а', U'ο', U'ñ'};
  std::vector<double> first;
  for (std::size_t pos = 0; pos < 6; ++pos) {
    for (char32_t cp : glyphs) {
      first.push_back(scorer.score(pos, cp));
    }
  }
  std::size_t i = 0;
  for (std::size_t pos = 0; pos < 6; ++pos) {
    for (char32_t cp : glyphs) {
      EXPECT_TRUE(bits_equal(first[i++], scorer.score(pos, cp)))
          << "pos=" << pos;
    }
  }
}

}  // namespace
}  // namespace idnscope::render
