// Integration regression: every qualitative Finding of the paper must hold
// on the measured (not ground-truth) side of the pipeline.
#include <gtest/gtest.h>

#include "idnscope/core/content_study.h"
#include "idnscope/core/dns_study.h"
#include "idnscope/core/language_study.h"
#include "idnscope/core/registration_study.h"
#include "idnscope/core/semantic.h"
#include "idnscope/core/ssl_study.h"
#include "idnscope/core/study.h"

namespace idnscope::core {
namespace {

// A mid-size world: large enough for stable statistics, small enough for CI.
const ecosystem::Ecosystem& world() {
  static const ecosystem::Ecosystem eco = [] {
    ecosystem::Scenario scenario;
    scenario.bulk_scale = 400;
    scenario.abuse_scale = 10;
    scenario.generate_filler = false;
    return ecosystem::generate(scenario);
  }();
  return eco;
}

const Study& study() {
  static const Study instance(world());
  return instance;
}

TEST(Findings, F1_EastAsianLanguagesDominate) {
  const auto languages = analyze_languages(study());
  EXPECT_GT(languages.east_asian_fraction(), 0.70);
  // Chinese tops both the overall and the malicious chart.
  const auto chinese = static_cast<std::size_t>(langid::Language::kChinese);
  for (std::size_t lang = 0; lang < langid::kLanguageCount; ++lang) {
    if (lang != chinese) {
      EXPECT_GE(languages.all[chinese], languages.all[lang]);
      EXPECT_GE(languages.malicious[chinese], languages.malicious[lang]);
    }
  }
}

TEST(Findings, F2_LongTermRegistrantsExist) {
  const double pre2008 = fraction_created_before(study(), 2008);
  EXPECT_GT(pre2008, 0.02);
  EXPECT_LT(pre2008, 0.15);  // paper: 6.16%
}

TEST(Findings, F3_OpportunisticPortfoliosExist) {
  const auto portfolios = top_registrants(study(), 5);
  ASSERT_EQ(portfolios.size(), 5U);
  // Table III's top registrant holds a four-digit portfolio at full scale;
  // scaled here, it must still clearly exceed a personal registration.
  EXPECT_GE(portfolios[0].idn_count, 3U);
  EXPECT_EQ(portfolios[0].email, "776053229@qq.com");
}

TEST(Findings, F4_RegistrarConcentration) {
  const auto stats = registrar_stats(study(), 10);
  EXPECT_GT(stats.distinct_registrars, 100U);
  EXPECT_GT(stats.top10_share, 0.45);
  EXPECT_LT(stats.top10_share, 0.70);  // paper: 55%
  ASSERT_FALSE(stats.top.empty());
  EXPECT_EQ(stats.top[0].name, "GMO Internet Inc.");
}

TEST(Findings, F5_IdnsLiveShorterThanNonIdns) {
  const auto idn = idn_activity(study(), "com", false);
  const auto non_idn = non_idn_activity(study(), "com");
  const auto malicious = idn_activity(study(), "com", true);
  // At every anchor of Fig 2, the IDN ECDF sits above the non-IDN ECDF.
  for (double days : {50.0, 100.0, 300.0, 600.0}) {
    EXPECT_GT(idn.active_days.fraction_at(days),
              non_idn.active_days.fraction_at(days))
        << days;
  }
  // Malicious IDNs live longer than benign IDNs.
  EXPECT_LT(malicious.active_days.fraction_at(100.0),
            idn.active_days.fraction_at(100.0));
}

TEST(Findings, F6_IdnsReceiveLessTrafficExceptMalicious) {
  const auto idn = idn_activity(study(), "com", false);
  const auto non_idn = non_idn_activity(study(), "com");
  const auto malicious = idn_activity(study(), "com", true);
  EXPECT_GT(idn.query_volume.fraction_at(100.0),
            non_idn.query_volume.fraction_at(100.0));
  EXPECT_GT(malicious.query_volume.mean(), non_idn.query_volume.mean());
}

TEST(Findings, F7_HostingIsConcentrated) {
  const auto hosting = hosting_concentration(study());
  EXPECT_GT(hosting.distinct_segments, 50U);
  // The ten biggest segments host a disproportionate share.
  EXPECT_GT(hosting.fraction_in_top(10),
            10.0 / static_cast<double>(hosting.distinct_segments) * 3.0);
}

TEST(Findings, F8_IdnContentLagsNonIdnContent) {
  const auto comparison = sampled_content_comparison(study(), 400, 7);
  EXPECT_LT(comparison.idn.fraction(web::PageCategory::kMeaningful),
            comparison.non_idn.fraction(web::PageCategory::kMeaningful));
  EXPECT_GT(comparison.idn.fraction(web::PageCategory::kNotResolved),
            comparison.non_idn.fraction(web::PageCategory::kNotResolved));
  EXPECT_LT(comparison.idn.fraction(web::PageCategory::kMeaningful), 0.35);
}

TEST(Findings, F9_SslDeploymentIsBroken) {
  const auto comparison = ssl_comparison(study());
  ASSERT_GT(comparison.idn_certs, 50U);
  EXPECT_GT(comparison.idn_problem_rate(), 0.90);       // paper: 97.95%
  EXPECT_GT(comparison.non_idn_problem_rate(), 0.90);   // paper: 97.23%
  // Invalid common name dominates, and more so for IDNs (parking).
  EXPECT_GT(comparison.idn.invalid_common_name, comparison.idn.expired);
  const auto shared = shared_cert_table(study(), 3);
  ASSERT_FALSE(shared.empty());
  EXPECT_EQ(shared[0].first, "sedoparking.com");
}

TEST(Findings, SemanticAttackTargetsChineseFacingBrands) {
  SemanticDetector detector(ecosystem::alexa_top1k());
  const auto report = analyze_semantics(study(), detector, 10);
  ASSERT_FALSE(report.top_brands.empty());
  EXPECT_EQ(report.top_brands[0].brand, "58.com");
  EXPECT_GT(report.brands_targeted, 10U);
}

}  // namespace
}  // namespace idnscope::core
