file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_shared_certs.dir/bench_table07_shared_certs.cpp.o"
  "CMakeFiles/bench_table07_shared_certs.dir/bench_table07_shared_certs.cpp.o.d"
  "bench_table07_shared_certs"
  "bench_table07_shared_certs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_shared_certs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
