# Empty dependencies file for bench_table07_shared_certs.
# This may be replaced when dependencies are built.
