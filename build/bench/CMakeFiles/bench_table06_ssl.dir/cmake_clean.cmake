file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_ssl.dir/bench_table06_ssl.cpp.o"
  "CMakeFiles/bench_table06_ssl.dir/bench_table06_ssl.cpp.o.d"
  "bench_table06_ssl"
  "bench_table06_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
