file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_homograph_dns.dir/bench_fig05_homograph_dns.cpp.o"
  "CMakeFiles/bench_fig05_homograph_dns.dir/bench_fig05_homograph_dns.cpp.o.d"
  "bench_fig05_homograph_dns"
  "bench_fig05_homograph_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_homograph_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
