# Empty dependencies file for bench_fig05_homograph_dns.
# This may be replaced when dependencies are built.
