# Empty compiler generated dependencies file for bench_fig04_hosting.
# This may be replaced when dependencies are built.
