file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_hosting.dir/bench_fig04_hosting.cpp.o"
  "CMakeFiles/bench_fig04_hosting.dir/bench_fig04_hosting.cpp.o.d"
  "bench_fig04_hosting"
  "bench_fig04_hosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_hosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
