# Empty dependencies file for bench_table11_browsers.
# This may be replaced when dependencies are built.
