file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_languages.dir/bench_table02_languages.cpp.o"
  "CMakeFiles/bench_table02_languages.dir/bench_table02_languages.cpp.o.d"
  "bench_table02_languages"
  "bench_table02_languages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_languages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
