# Empty dependencies file for bench_fig08_semantic_dns.
# This may be replaced when dependencies are built.
