file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_semantic_dns.dir/bench_fig08_semantic_dns.cpp.o"
  "CMakeFiles/bench_fig08_semantic_dns.dir/bench_fig08_semantic_dns.cpp.o.d"
  "bench_fig08_semantic_dns"
  "bench_fig08_semantic_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_semantic_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
