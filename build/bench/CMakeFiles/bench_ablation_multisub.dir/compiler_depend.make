# Empty compiler generated dependencies file for bench_ablation_multisub.
# This may be replaced when dependencies are built.
