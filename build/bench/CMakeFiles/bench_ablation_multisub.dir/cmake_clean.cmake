file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multisub.dir/bench_ablation_multisub.cpp.o"
  "CMakeFiles/bench_ablation_multisub.dir/bench_ablation_multisub.cpp.o.d"
  "bench_ablation_multisub"
  "bench_ablation_multisub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multisub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
