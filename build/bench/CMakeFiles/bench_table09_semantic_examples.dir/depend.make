# Empty dependencies file for bench_table09_semantic_examples.
# This may be replaced when dependencies are built.
