# Empty compiler generated dependencies file for bench_table13_homograph_brands.
# This may be replaced when dependencies are built.
