file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_homograph_brands.dir/bench_table13_homograph_brands.cpp.o"
  "CMakeFiles/bench_table13_homograph_brands.dir/bench_table13_homograph_brands.cpp.o.d"
  "bench_table13_homograph_brands"
  "bench_table13_homograph_brands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_homograph_brands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
