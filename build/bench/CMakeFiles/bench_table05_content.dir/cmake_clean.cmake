file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_content.dir/bench_table05_content.cpp.o"
  "CMakeFiles/bench_table05_content.dir/bench_table05_content.cpp.o.d"
  "bench_table05_content"
  "bench_table05_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
