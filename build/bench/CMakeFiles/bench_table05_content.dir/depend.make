# Empty dependencies file for bench_table05_content.
# This may be replaced when dependencies are built.
