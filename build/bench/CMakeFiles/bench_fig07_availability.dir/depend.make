# Empty dependencies file for bench_fig07_availability.
# This may be replaced when dependencies are built.
