# Empty compiler generated dependencies file for bench_micro_ssim.
# This may be replaced when dependencies are built.
