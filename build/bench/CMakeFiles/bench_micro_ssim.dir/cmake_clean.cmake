file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ssim.dir/bench_micro_ssim.cpp.o"
  "CMakeFiles/bench_micro_ssim.dir/bench_micro_ssim.cpp.o.d"
  "bench_micro_ssim"
  "bench_micro_ssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
