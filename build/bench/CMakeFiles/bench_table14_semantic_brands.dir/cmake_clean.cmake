file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_semantic_brands.dir/bench_table14_semantic_brands.cpp.o"
  "CMakeFiles/bench_table14_semantic_brands.dir/bench_table14_semantic_brands.cpp.o.d"
  "bench_table14_semantic_brands"
  "bench_table14_semantic_brands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_semantic_brands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
