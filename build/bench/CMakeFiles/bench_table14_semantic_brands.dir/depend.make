# Empty dependencies file for bench_table14_semantic_brands.
# This may be replaced when dependencies are built.
