file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_registrars.dir/bench_table04_registrars.cpp.o"
  "CMakeFiles/bench_table04_registrars.dir/bench_table04_registrars.cpp.o.d"
  "bench_table04_registrars"
  "bench_table04_registrars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_registrars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
