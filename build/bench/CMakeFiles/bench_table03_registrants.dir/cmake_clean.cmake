file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_registrants.dir/bench_table03_registrants.cpp.o"
  "CMakeFiles/bench_table03_registrants.dir/bench_table03_registrants.cpp.o.d"
  "bench_table03_registrants"
  "bench_table03_registrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_registrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
