# Empty dependencies file for bench_table12_ssim_gradient.
# This may be replaced when dependencies are built.
