file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_ssim_gradient.dir/bench_table12_ssim_gradient.cpp.o"
  "CMakeFiles/bench_table12_ssim_gradient.dir/bench_table12_ssim_gradient.cpp.o.d"
  "bench_table12_ssim_gradient"
  "bench_table12_ssim_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_ssim_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
