# Empty compiler generated dependencies file for bench_table08_facebook.
# This may be replaced when dependencies are built.
