file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_facebook.dir/bench_table08_facebook.cpp.o"
  "CMakeFiles/bench_table08_facebook.dir/bench_table08_facebook.cpp.o.d"
  "bench_table08_facebook"
  "bench_table08_facebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_facebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
