# Empty compiler generated dependencies file for bench_ext_type2.
# This may be replaced when dependencies are built.
