
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig03_query_volume.cpp" "bench/CMakeFiles/bench_fig03_query_volume.dir/bench_fig03_query_volume.cpp.o" "gcc" "bench/CMakeFiles/bench_fig03_query_volume.dir/bench_fig03_query_volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idnscope/core/CMakeFiles/idnscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/stats/CMakeFiles/idnscope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/render/CMakeFiles/idnscope_render.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/ecosystem/CMakeFiles/idnscope_ecosystem.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/langid/CMakeFiles/idnscope_langid.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/whois/CMakeFiles/idnscope_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/ssl/CMakeFiles/idnscope_ssl.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/web/CMakeFiles/idnscope_web.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/dns/CMakeFiles/idnscope_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/idna/CMakeFiles/idnscope_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/unicode/CMakeFiles/idnscope_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/common/CMakeFiles/idnscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
