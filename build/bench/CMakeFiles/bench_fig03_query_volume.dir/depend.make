# Empty dependencies file for bench_fig03_query_volume.
# This may be replaced when dependencies are built.
