file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_unregistered_traffic.dir/bench_fig06_unregistered_traffic.cpp.o"
  "CMakeFiles/bench_fig06_unregistered_traffic.dir/bench_fig06_unregistered_traffic.cpp.o.d"
  "bench_fig06_unregistered_traffic"
  "bench_fig06_unregistered_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_unregistered_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
