# Empty compiler generated dependencies file for bench_fig06_unregistered_traffic.
# This may be replaced when dependencies are built.
