# Empty dependencies file for bench_ext_brand_protection.
# This may be replaced when dependencies are built.
