file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_brand_protection.dir/bench_ext_brand_protection.cpp.o"
  "CMakeFiles/bench_ext_brand_protection.dir/bench_ext_brand_protection.cpp.o.d"
  "bench_ext_brand_protection"
  "bench_ext_brand_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_brand_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
