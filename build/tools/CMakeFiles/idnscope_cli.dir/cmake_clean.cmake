file(REMOVE_RECURSE
  "CMakeFiles/idnscope_cli.dir/idnscope_cli.cpp.o"
  "CMakeFiles/idnscope_cli.dir/idnscope_cli.cpp.o.d"
  "idnscope"
  "idnscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
