# Empty dependencies file for idnscope_cli.
# This may be replaced when dependencies are built.
