file(REMOVE_RECURSE
  "CMakeFiles/ecosystem_report.dir/ecosystem_report.cpp.o"
  "CMakeFiles/ecosystem_report.dir/ecosystem_report.cpp.o.d"
  "ecosystem_report"
  "ecosystem_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecosystem_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
