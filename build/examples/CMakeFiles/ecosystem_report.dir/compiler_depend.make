# Empty compiler generated dependencies file for ecosystem_report.
# This may be replaced when dependencies are built.
