file(REMOVE_RECURSE
  "CMakeFiles/phishing_audit.dir/phishing_audit.cpp.o"
  "CMakeFiles/phishing_audit.dir/phishing_audit.cpp.o.d"
  "phishing_audit"
  "phishing_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phishing_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
