# Empty compiler generated dependencies file for phishing_audit.
# This may be replaced when dependencies are built.
