file(REMOVE_RECURSE
  "CMakeFiles/test_ssl.dir/ssl_test.cpp.o"
  "CMakeFiles/test_ssl.dir/ssl_test.cpp.o.d"
  "test_ssl"
  "test_ssl.pdb"
  "test_ssl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
