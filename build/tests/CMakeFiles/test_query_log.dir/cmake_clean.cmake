file(REMOVE_RECURSE
  "CMakeFiles/test_query_log.dir/query_log_test.cpp.o"
  "CMakeFiles/test_query_log.dir/query_log_test.cpp.o.d"
  "test_query_log"
  "test_query_log.pdb"
  "test_query_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
