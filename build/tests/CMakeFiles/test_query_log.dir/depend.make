# Empty dependencies file for test_query_log.
# This may be replaced when dependencies are built.
