file(REMOVE_RECURSE
  "CMakeFiles/test_idna.dir/idna_test.cpp.o"
  "CMakeFiles/test_idna.dir/idna_test.cpp.o.d"
  "test_idna"
  "test_idna.pdb"
  "test_idna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
