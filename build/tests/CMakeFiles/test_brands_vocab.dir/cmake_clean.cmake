file(REMOVE_RECURSE
  "CMakeFiles/test_brands_vocab.dir/brands_vocab_test.cpp.o"
  "CMakeFiles/test_brands_vocab.dir/brands_vocab_test.cpp.o.d"
  "test_brands_vocab"
  "test_brands_vocab.pdb"
  "test_brands_vocab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brands_vocab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
