# Empty dependencies file for test_brands_vocab.
# This may be replaced when dependencies are built.
