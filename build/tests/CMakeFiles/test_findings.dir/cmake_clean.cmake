file(REMOVE_RECURSE
  "CMakeFiles/test_findings.dir/findings_test.cpp.o"
  "CMakeFiles/test_findings.dir/findings_test.cpp.o.d"
  "test_findings"
  "test_findings.pdb"
  "test_findings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
