file(REMOVE_RECURSE
  "CMakeFiles/test_langid.dir/langid_test.cpp.o"
  "CMakeFiles/test_langid.dir/langid_test.cpp.o.d"
  "test_langid"
  "test_langid.pdb"
  "test_langid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_langid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
