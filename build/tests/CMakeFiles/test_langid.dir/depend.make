# Empty dependencies file for test_langid.
# This may be replaced when dependencies are built.
