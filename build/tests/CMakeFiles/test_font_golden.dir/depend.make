# Empty dependencies file for test_font_golden.
# This may be replaced when dependencies are built.
