file(REMOVE_RECURSE
  "CMakeFiles/test_font_golden.dir/font_golden_test.cpp.o"
  "CMakeFiles/test_font_golden.dir/font_golden_test.cpp.o.d"
  "test_font_golden"
  "test_font_golden.pdb"
  "test_font_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_font_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
