# Empty compiler generated dependencies file for test_confusables.
# This may be replaced when dependencies are built.
