file(REMOVE_RECURSE
  "CMakeFiles/test_seed_robustness.dir/seed_robustness_test.cpp.o"
  "CMakeFiles/test_seed_robustness.dir/seed_robustness_test.cpp.o.d"
  "test_seed_robustness"
  "test_seed_robustness.pdb"
  "test_seed_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
