# Empty compiler generated dependencies file for test_punycode.
# This may be replaced when dependencies are built.
