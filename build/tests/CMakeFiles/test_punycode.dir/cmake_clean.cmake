file(REMOVE_RECURSE
  "CMakeFiles/test_punycode.dir/punycode_test.cpp.o"
  "CMakeFiles/test_punycode.dir/punycode_test.cpp.o.d"
  "test_punycode"
  "test_punycode.pdb"
  "test_punycode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_punycode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
