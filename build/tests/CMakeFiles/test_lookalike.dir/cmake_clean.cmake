file(REMOVE_RECURSE
  "CMakeFiles/test_lookalike.dir/lookalike_test.cpp.o"
  "CMakeFiles/test_lookalike.dir/lookalike_test.cpp.o.d"
  "test_lookalike"
  "test_lookalike.pdb"
  "test_lookalike[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookalike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
