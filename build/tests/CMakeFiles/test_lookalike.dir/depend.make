# Empty dependencies file for test_lookalike.
# This may be replaced when dependencies are built.
