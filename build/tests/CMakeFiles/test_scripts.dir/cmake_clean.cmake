file(REMOVE_RECURSE
  "CMakeFiles/test_scripts.dir/scripts_test.cpp.o"
  "CMakeFiles/test_scripts.dir/scripts_test.cpp.o.d"
  "test_scripts"
  "test_scripts.pdb"
  "test_scripts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
