file(REMOVE_RECURSE
  "CMakeFiles/test_utf8.dir/utf8_test.cpp.o"
  "CMakeFiles/test_utf8.dir/utf8_test.cpp.o.d"
  "test_utf8"
  "test_utf8.pdb"
  "test_utf8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utf8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
