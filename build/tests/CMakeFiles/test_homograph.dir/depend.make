# Empty dependencies file for test_homograph.
# This may be replaced when dependencies are built.
