file(REMOVE_RECURSE
  "CMakeFiles/test_homograph.dir/homograph_test.cpp.o"
  "CMakeFiles/test_homograph.dir/homograph_test.cpp.o.d"
  "test_homograph"
  "test_homograph.pdb"
  "test_homograph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_homograph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
