file(REMOVE_RECURSE
  "CMakeFiles/test_zone_io.dir/zone_io_test.cpp.o"
  "CMakeFiles/test_zone_io.dir/zone_io_test.cpp.o.d"
  "test_zone_io"
  "test_zone_io.pdb"
  "test_zone_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
