# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("idnscope/common")
subdirs("idnscope/unicode")
subdirs("idnscope/idna")
subdirs("idnscope/stats")
subdirs("idnscope/dns")
subdirs("idnscope/langid")
subdirs("idnscope/render")
subdirs("idnscope/whois")
subdirs("idnscope/ssl")
subdirs("idnscope/web")
subdirs("idnscope/ecosystem")
subdirs("idnscope/core")
