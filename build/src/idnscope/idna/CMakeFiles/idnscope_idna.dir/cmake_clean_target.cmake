file(REMOVE_RECURSE
  "libidnscope_idna.a"
)
