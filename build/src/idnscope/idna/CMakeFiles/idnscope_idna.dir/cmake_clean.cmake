file(REMOVE_RECURSE
  "CMakeFiles/idnscope_idna.dir/domain.cpp.o"
  "CMakeFiles/idnscope_idna.dir/domain.cpp.o.d"
  "CMakeFiles/idnscope_idna.dir/idna.cpp.o"
  "CMakeFiles/idnscope_idna.dir/idna.cpp.o.d"
  "CMakeFiles/idnscope_idna.dir/lookalike.cpp.o"
  "CMakeFiles/idnscope_idna.dir/lookalike.cpp.o.d"
  "CMakeFiles/idnscope_idna.dir/punycode.cpp.o"
  "CMakeFiles/idnscope_idna.dir/punycode.cpp.o.d"
  "libidnscope_idna.a"
  "libidnscope_idna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_idna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
