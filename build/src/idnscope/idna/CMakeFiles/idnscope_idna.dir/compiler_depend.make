# Empty compiler generated dependencies file for idnscope_idna.
# This may be replaced when dependencies are built.
