
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idnscope/ssl/cert_store.cpp" "src/idnscope/ssl/CMakeFiles/idnscope_ssl.dir/cert_store.cpp.o" "gcc" "src/idnscope/ssl/CMakeFiles/idnscope_ssl.dir/cert_store.cpp.o.d"
  "/root/repo/src/idnscope/ssl/certificate.cpp" "src/idnscope/ssl/CMakeFiles/idnscope_ssl.dir/certificate.cpp.o" "gcc" "src/idnscope/ssl/CMakeFiles/idnscope_ssl.dir/certificate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idnscope/common/CMakeFiles/idnscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
