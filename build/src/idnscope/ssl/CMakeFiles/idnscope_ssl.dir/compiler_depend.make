# Empty compiler generated dependencies file for idnscope_ssl.
# This may be replaced when dependencies are built.
