file(REMOVE_RECURSE
  "libidnscope_ssl.a"
)
