file(REMOVE_RECURSE
  "CMakeFiles/idnscope_ssl.dir/cert_store.cpp.o"
  "CMakeFiles/idnscope_ssl.dir/cert_store.cpp.o.d"
  "CMakeFiles/idnscope_ssl.dir/certificate.cpp.o"
  "CMakeFiles/idnscope_ssl.dir/certificate.cpp.o.d"
  "libidnscope_ssl.a"
  "libidnscope_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
