# Empty dependencies file for idnscope_render.
# This may be replaced when dependencies are built.
