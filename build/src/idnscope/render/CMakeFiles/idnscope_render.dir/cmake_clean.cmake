file(REMOVE_RECURSE
  "CMakeFiles/idnscope_render.dir/font.cpp.o"
  "CMakeFiles/idnscope_render.dir/font.cpp.o.d"
  "CMakeFiles/idnscope_render.dir/image.cpp.o"
  "CMakeFiles/idnscope_render.dir/image.cpp.o.d"
  "CMakeFiles/idnscope_render.dir/renderer.cpp.o"
  "CMakeFiles/idnscope_render.dir/renderer.cpp.o.d"
  "CMakeFiles/idnscope_render.dir/ssim.cpp.o"
  "CMakeFiles/idnscope_render.dir/ssim.cpp.o.d"
  "libidnscope_render.a"
  "libidnscope_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
