
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idnscope/render/font.cpp" "src/idnscope/render/CMakeFiles/idnscope_render.dir/font.cpp.o" "gcc" "src/idnscope/render/CMakeFiles/idnscope_render.dir/font.cpp.o.d"
  "/root/repo/src/idnscope/render/image.cpp" "src/idnscope/render/CMakeFiles/idnscope_render.dir/image.cpp.o" "gcc" "src/idnscope/render/CMakeFiles/idnscope_render.dir/image.cpp.o.d"
  "/root/repo/src/idnscope/render/renderer.cpp" "src/idnscope/render/CMakeFiles/idnscope_render.dir/renderer.cpp.o" "gcc" "src/idnscope/render/CMakeFiles/idnscope_render.dir/renderer.cpp.o.d"
  "/root/repo/src/idnscope/render/ssim.cpp" "src/idnscope/render/CMakeFiles/idnscope_render.dir/ssim.cpp.o" "gcc" "src/idnscope/render/CMakeFiles/idnscope_render.dir/ssim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idnscope/common/CMakeFiles/idnscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/unicode/CMakeFiles/idnscope_unicode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
