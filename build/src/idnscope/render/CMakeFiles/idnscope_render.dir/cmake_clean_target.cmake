file(REMOVE_RECURSE
  "libidnscope_render.a"
)
