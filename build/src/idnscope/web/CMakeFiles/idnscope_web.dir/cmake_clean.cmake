file(REMOVE_RECURSE
  "CMakeFiles/idnscope_web.dir/web.cpp.o"
  "CMakeFiles/idnscope_web.dir/web.cpp.o.d"
  "libidnscope_web.a"
  "libidnscope_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
