# Empty dependencies file for idnscope_web.
# This may be replaced when dependencies are built.
