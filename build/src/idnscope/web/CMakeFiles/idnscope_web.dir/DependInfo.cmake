
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idnscope/web/web.cpp" "src/idnscope/web/CMakeFiles/idnscope_web.dir/web.cpp.o" "gcc" "src/idnscope/web/CMakeFiles/idnscope_web.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idnscope/common/CMakeFiles/idnscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/dns/CMakeFiles/idnscope_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/idna/CMakeFiles/idnscope_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/unicode/CMakeFiles/idnscope_unicode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
