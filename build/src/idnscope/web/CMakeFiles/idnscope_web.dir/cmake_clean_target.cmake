file(REMOVE_RECURSE
  "libidnscope_web.a"
)
