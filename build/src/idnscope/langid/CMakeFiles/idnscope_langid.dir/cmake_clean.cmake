file(REMOVE_RECURSE
  "CMakeFiles/idnscope_langid.dir/classifier.cpp.o"
  "CMakeFiles/idnscope_langid.dir/classifier.cpp.o.d"
  "CMakeFiles/idnscope_langid.dir/corpora.cpp.o"
  "CMakeFiles/idnscope_langid.dir/corpora.cpp.o.d"
  "CMakeFiles/idnscope_langid.dir/language.cpp.o"
  "CMakeFiles/idnscope_langid.dir/language.cpp.o.d"
  "libidnscope_langid.a"
  "libidnscope_langid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_langid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
