# Empty dependencies file for idnscope_langid.
# This may be replaced when dependencies are built.
