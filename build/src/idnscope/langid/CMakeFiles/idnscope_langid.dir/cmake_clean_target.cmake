file(REMOVE_RECURSE
  "libidnscope_langid.a"
)
