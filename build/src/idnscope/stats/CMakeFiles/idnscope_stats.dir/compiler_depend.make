# Empty compiler generated dependencies file for idnscope_stats.
# This may be replaced when dependencies are built.
