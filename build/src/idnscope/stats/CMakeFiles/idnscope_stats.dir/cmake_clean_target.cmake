file(REMOVE_RECURSE
  "libidnscope_stats.a"
)
