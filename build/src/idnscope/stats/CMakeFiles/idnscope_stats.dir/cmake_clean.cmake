file(REMOVE_RECURSE
  "CMakeFiles/idnscope_stats.dir/ecdf.cpp.o"
  "CMakeFiles/idnscope_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/idnscope_stats.dir/table.cpp.o"
  "CMakeFiles/idnscope_stats.dir/table.cpp.o.d"
  "libidnscope_stats.a"
  "libidnscope_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
