file(REMOVE_RECURSE
  "CMakeFiles/idnscope_dns.dir/ipv4.cpp.o"
  "CMakeFiles/idnscope_dns.dir/ipv4.cpp.o.d"
  "CMakeFiles/idnscope_dns.dir/pdns.cpp.o"
  "CMakeFiles/idnscope_dns.dir/pdns.cpp.o.d"
  "CMakeFiles/idnscope_dns.dir/query_log.cpp.o"
  "CMakeFiles/idnscope_dns.dir/query_log.cpp.o.d"
  "CMakeFiles/idnscope_dns.dir/resolver.cpp.o"
  "CMakeFiles/idnscope_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/idnscope_dns.dir/zone.cpp.o"
  "CMakeFiles/idnscope_dns.dir/zone.cpp.o.d"
  "CMakeFiles/idnscope_dns.dir/zone_io.cpp.o"
  "CMakeFiles/idnscope_dns.dir/zone_io.cpp.o.d"
  "libidnscope_dns.a"
  "libidnscope_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
