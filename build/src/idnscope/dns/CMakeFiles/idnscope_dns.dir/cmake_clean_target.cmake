file(REMOVE_RECURSE
  "libidnscope_dns.a"
)
