# Empty dependencies file for idnscope_dns.
# This may be replaced when dependencies are built.
