
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idnscope/dns/ipv4.cpp" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/ipv4.cpp.o" "gcc" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/ipv4.cpp.o.d"
  "/root/repo/src/idnscope/dns/pdns.cpp" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/pdns.cpp.o" "gcc" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/pdns.cpp.o.d"
  "/root/repo/src/idnscope/dns/query_log.cpp" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/query_log.cpp.o" "gcc" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/query_log.cpp.o.d"
  "/root/repo/src/idnscope/dns/resolver.cpp" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/resolver.cpp.o" "gcc" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/resolver.cpp.o.d"
  "/root/repo/src/idnscope/dns/zone.cpp" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/zone.cpp.o" "gcc" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/zone.cpp.o.d"
  "/root/repo/src/idnscope/dns/zone_io.cpp" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/zone_io.cpp.o" "gcc" "src/idnscope/dns/CMakeFiles/idnscope_dns.dir/zone_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idnscope/common/CMakeFiles/idnscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/idna/CMakeFiles/idnscope_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/unicode/CMakeFiles/idnscope_unicode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
