file(REMOVE_RECURSE
  "CMakeFiles/idnscope_common.dir/date.cpp.o"
  "CMakeFiles/idnscope_common.dir/date.cpp.o.d"
  "CMakeFiles/idnscope_common.dir/rng.cpp.o"
  "CMakeFiles/idnscope_common.dir/rng.cpp.o.d"
  "CMakeFiles/idnscope_common.dir/strings.cpp.o"
  "CMakeFiles/idnscope_common.dir/strings.cpp.o.d"
  "libidnscope_common.a"
  "libidnscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
