# Empty dependencies file for idnscope_common.
# This may be replaced when dependencies are built.
