file(REMOVE_RECURSE
  "libidnscope_common.a"
)
