file(REMOVE_RECURSE
  "CMakeFiles/idnscope_whois.dir/whois.cpp.o"
  "CMakeFiles/idnscope_whois.dir/whois.cpp.o.d"
  "libidnscope_whois.a"
  "libidnscope_whois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_whois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
