file(REMOVE_RECURSE
  "libidnscope_whois.a"
)
