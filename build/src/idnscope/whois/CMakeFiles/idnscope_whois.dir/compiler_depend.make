# Empty compiler generated dependencies file for idnscope_whois.
# This may be replaced when dependencies are built.
