# CMake generated Testfile for 
# Source directory: /root/repo/src/idnscope/unicode
# Build directory: /root/repo/build/src/idnscope/unicode
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
