file(REMOVE_RECURSE
  "libidnscope_unicode.a"
)
