file(REMOVE_RECURSE
  "CMakeFiles/idnscope_unicode.dir/confusables.cpp.o"
  "CMakeFiles/idnscope_unicode.dir/confusables.cpp.o.d"
  "CMakeFiles/idnscope_unicode.dir/scripts.cpp.o"
  "CMakeFiles/idnscope_unicode.dir/scripts.cpp.o.d"
  "CMakeFiles/idnscope_unicode.dir/utf8.cpp.o"
  "CMakeFiles/idnscope_unicode.dir/utf8.cpp.o.d"
  "libidnscope_unicode.a"
  "libidnscope_unicode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_unicode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
