# Empty compiler generated dependencies file for idnscope_unicode.
# This may be replaced when dependencies are built.
