
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idnscope/core/availability.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/availability.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/availability.cpp.o.d"
  "/root/repo/src/idnscope/core/brand_protection.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/brand_protection.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/brand_protection.cpp.o.d"
  "/root/repo/src/idnscope/core/browser.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/browser.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/browser.cpp.o.d"
  "/root/repo/src/idnscope/core/content_study.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/content_study.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/content_study.cpp.o.d"
  "/root/repo/src/idnscope/core/dns_study.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/dns_study.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/dns_study.cpp.o.d"
  "/root/repo/src/idnscope/core/homograph.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/homograph.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/homograph.cpp.o.d"
  "/root/repo/src/idnscope/core/language_study.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/language_study.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/language_study.cpp.o.d"
  "/root/repo/src/idnscope/core/registration_study.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/registration_study.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/registration_study.cpp.o.d"
  "/root/repo/src/idnscope/core/report.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/report.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/report.cpp.o.d"
  "/root/repo/src/idnscope/core/semantic.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/semantic.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/semantic.cpp.o.d"
  "/root/repo/src/idnscope/core/semantic_type2.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/semantic_type2.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/semantic_type2.cpp.o.d"
  "/root/repo/src/idnscope/core/ssl_study.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/ssl_study.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/ssl_study.cpp.o.d"
  "/root/repo/src/idnscope/core/study.cpp" "src/idnscope/core/CMakeFiles/idnscope_core.dir/study.cpp.o" "gcc" "src/idnscope/core/CMakeFiles/idnscope_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idnscope/common/CMakeFiles/idnscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/unicode/CMakeFiles/idnscope_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/idna/CMakeFiles/idnscope_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/dns/CMakeFiles/idnscope_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/langid/CMakeFiles/idnscope_langid.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/render/CMakeFiles/idnscope_render.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/whois/CMakeFiles/idnscope_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/ssl/CMakeFiles/idnscope_ssl.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/web/CMakeFiles/idnscope_web.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/stats/CMakeFiles/idnscope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/idnscope/ecosystem/CMakeFiles/idnscope_ecosystem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
