file(REMOVE_RECURSE
  "libidnscope_core.a"
)
