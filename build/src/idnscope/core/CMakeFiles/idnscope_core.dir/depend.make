# Empty dependencies file for idnscope_core.
# This may be replaced when dependencies are built.
