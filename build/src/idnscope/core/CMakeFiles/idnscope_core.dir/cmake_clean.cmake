file(REMOVE_RECURSE
  "CMakeFiles/idnscope_core.dir/availability.cpp.o"
  "CMakeFiles/idnscope_core.dir/availability.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/brand_protection.cpp.o"
  "CMakeFiles/idnscope_core.dir/brand_protection.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/browser.cpp.o"
  "CMakeFiles/idnscope_core.dir/browser.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/content_study.cpp.o"
  "CMakeFiles/idnscope_core.dir/content_study.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/dns_study.cpp.o"
  "CMakeFiles/idnscope_core.dir/dns_study.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/homograph.cpp.o"
  "CMakeFiles/idnscope_core.dir/homograph.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/language_study.cpp.o"
  "CMakeFiles/idnscope_core.dir/language_study.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/registration_study.cpp.o"
  "CMakeFiles/idnscope_core.dir/registration_study.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/report.cpp.o"
  "CMakeFiles/idnscope_core.dir/report.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/semantic.cpp.o"
  "CMakeFiles/idnscope_core.dir/semantic.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/semantic_type2.cpp.o"
  "CMakeFiles/idnscope_core.dir/semantic_type2.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/ssl_study.cpp.o"
  "CMakeFiles/idnscope_core.dir/ssl_study.cpp.o.d"
  "CMakeFiles/idnscope_core.dir/study.cpp.o"
  "CMakeFiles/idnscope_core.dir/study.cpp.o.d"
  "libidnscope_core.a"
  "libidnscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
