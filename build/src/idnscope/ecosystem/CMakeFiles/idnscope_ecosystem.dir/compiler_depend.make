# Empty compiler generated dependencies file for idnscope_ecosystem.
# This may be replaced when dependencies are built.
