file(REMOVE_RECURSE
  "libidnscope_ecosystem.a"
)
