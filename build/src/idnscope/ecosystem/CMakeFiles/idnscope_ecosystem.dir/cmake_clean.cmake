file(REMOVE_RECURSE
  "CMakeFiles/idnscope_ecosystem.dir/brands.cpp.o"
  "CMakeFiles/idnscope_ecosystem.dir/brands.cpp.o.d"
  "CMakeFiles/idnscope_ecosystem.dir/generator.cpp.o"
  "CMakeFiles/idnscope_ecosystem.dir/generator.cpp.o.d"
  "CMakeFiles/idnscope_ecosystem.dir/vocab.cpp.o"
  "CMakeFiles/idnscope_ecosystem.dir/vocab.cpp.o.d"
  "libidnscope_ecosystem.a"
  "libidnscope_ecosystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idnscope_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
